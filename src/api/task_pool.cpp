#include "api/task_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <system_error>

#include "support/faults.hpp"
#include "support/log.hpp"

#if defined(__linux__)
#include <cerrno>
#include <pthread.h>
#include <sched.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace gga {

namespace {

/** Hard cap: every task is a whole-workload simulation, so widths beyond
 *  this never help, and an unclamped environment value must not spawn
 *  until exhaustion. */
constexpr unsigned kMaxThreads = 512;

unsigned
laneIndex(Lane lane)
{
    return static_cast<unsigned>(lane);
}

#if defined(__linux__)
/**
 * Whether a worker thread can lower its nice for a batch task AND raise
 * it back afterwards. Lowering is always allowed; raising needs
 * CAP_SYS_NICE (root) or an RLIMIT_NICE whose ceiling (nice 20 -
 * rlim_cur) reaches the thread's base nice. Checked once, side-effect
 * free — probing by actually lowering would strand an unprivileged
 * thread at the lower priority.
 */
bool
canAdjustNice()
{
    if (geteuid() == 0)
        return true;
    struct rlimit rl
    {
    };
    if (getrlimit(RLIMIT_NICE, &rl) != 0)
        return false;
    errno = 0;
    const int base = getpriority(PRIO_PROCESS, 0);
    if (base == -1 && errno != 0)
        return false;
    return base >= 20 - static_cast<int>(rl.rlim_cur);
}
#endif

} // namespace

const char*
laneName(Lane lane)
{
    return lane == Lane::Interactive ? "interactive" : "batch";
}

std::optional<Lane>
parseLane(std::string_view name)
{
    if (name == "interactive")
        return Lane::Interactive;
    if (name == "batch")
        return Lane::Batch;
    return std::nullopt;
}

bool
defaultPinThreads()
{
    const char* env = std::getenv("GGA_PIN_THREADS");
    if (env == nullptr)
        return false;
    const std::string_view value(env);
    return !value.empty() && value != "0" && value != "false";
}

TaskPool::TaskPool(TaskPoolOptions opts)
{
    unsigned requested = std::clamp(opts.threads, 1u, kMaxThreads);
    if (opts.threads > kMaxThreads)
        GGA_WARN("TaskPool width ", opts.threads, " clamped to ",
                 kMaxThreads);
    pinThreads_ = opts.pinThreads.value_or(defaultPinThreads());
#if defined(__linux__)
    if (opts.batchNice != 0 && canAdjustNice())
        batchNice_ = opts.batchNice;
#endif

    // All Worker objects (and their deques) must exist before any thread
    // starts: a worker spawned early probes its siblings' deques.
    workers_.reserve(requested);
    for (unsigned t = 0; t < requested; ++t)
        workers_.push_back(std::make_unique<Worker>(t));

    for (auto& w : workers_) {
        try {
            Worker* self = w.get();
            w->thread = std::thread([this, self] { workerLoop(*self); });
        } catch (const std::system_error& e) {
            // Out of thread resources: run with what we got. Running
            // workers hold pointers into workers_, so it must not
            // shrink; the threadless tail just owns forever-empty
            // deques. With zero workers there is no pool to salvage.
            if (spawned_ == 0) {
                workers_.clear();
                throw;
            }
            GGA_WARN("TaskPool spawned ", spawned_, " of ", requested,
                     " workers (", e.what(),
                     "); continuing at reduced width");
            break;
        }
        ++spawned_;
    }
}

TaskPool::~TaskPool()
{
    {
        MutexLock lock(mu_);
        stopping_ = true;
        ++version_;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

std::size_t
TaskPool::pending() const
{
    return pending(Lane::Interactive) + pending(Lane::Batch);
}

std::size_t
TaskPool::pending(Lane lane) const
{
    const unsigned l = laneIndex(lane);
    std::size_t total = 0;
    {
        MutexLock lock(mu_);
        total += injected_[l].size();
        for (const std::vector<Task>& batch : expanders_[l])
            total += batch.size();
    }
    for (const auto& w : workers_)
        total += w->deq[l].sizeEstimate();
    return total;
}

unsigned
TaskPool::active() const
{
    return active_.load(std::memory_order_relaxed);
}

std::uint64_t
TaskPool::completedTotal() const
{
    return completed_.load(std::memory_order_relaxed);
}

TaskPool::Stats
TaskPool::stats() const
{
    Stats s;
    s.interactiveDepth = pending(Lane::Interactive);
    s.batchDepth = pending(Lane::Batch);
    s.stealsTotal = steals_.load(std::memory_order_relaxed);
    s.stealFailures = stealFailures_.load(std::memory_order_relaxed);
    s.pinned = pinThreads_ &&
               pinnedWorkers_.load(std::memory_order_relaxed) == width();
    s.batchNiced = batchNice_ != 0;
    return s;
}

void
TaskPool::post(Task job, Lane lane)
{
    GGA_ASSERT(job, "TaskPool::post requires a callable job");
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    {
        MutexLock lock(mu_);
        GGA_ASSERT(!stopping_, "TaskPool::post after shutdown began");
        injected_[laneIndex(lane)].push_back(std::move(job));
        ++version_;
    }
    cv_.notify_one();
}

void
TaskPool::postAll(std::vector<Task> jobs, Lane lane)
{
    if (jobs.empty())
        return;
    for (const Task& job : jobs)
        GGA_ASSERT(job, "TaskPool::postAll requires callable jobs");
    outstanding_.fetch_add(jobs.size(), std::memory_order_acq_rel);
    {
        MutexLock lock(mu_);
        GGA_ASSERT(!stopping_, "TaskPool::postAll after shutdown began");
        expanders_[laneIndex(lane)].push_back(std::move(jobs));
        ++version_;
    }
    // Everyone: the batch is about to fan out across the deques.
    cv_.notify_all();
}

void
TaskPool::workerLoop(Worker& self)
{
    if (pinThreads_)
        pinSelf(self.index);
    for (;;) {
        std::uint64_t scanned = 0;
        {
            MutexLock lock(mu_);
            scanned = version_;
        }
        if (runOne(self))
            continue;
        // The scan found nothing. Sleep only if nothing became visible
        // since we recorded the version: a producer bumps version_
        // (under mu_) after publishing, so either we see its version
        // bump here or the scan saw its work.
        MutexLock lock(mu_);
        while (version_ == scanned &&
               !(stopping_ &&
                 outstanding_.load(std::memory_order_acquire) == 0))
            cv_.wait(mu_);
        if (stopping_ && outstanding_.load(std::memory_order_acquire) == 0)
            return;
    }
}

bool
TaskPool::runOne(Worker& self)
{
    Task task;
    Lane lane = Lane::Interactive;
    if (!takeFromLane(self, Lane::Interactive, task)) {
        if (!takeFromLane(self, Lane::Batch, task))
            return false;
        lane = Lane::Batch;
    }
    // Deterministic schedule perturbation: the determinism tests arm
    // this site to prove results cannot depend on interleaving.
    if (faults::fire("pool.yield"))
        std::this_thread::yield();
    execute(std::move(task), lane);
    return true;
}

bool
TaskPool::takeFromLane(Worker& self, Lane lane, Task& out)
{
    const unsigned l = laneIndex(lane);
    Task* node = nullptr;
    if (self.deq[l].popBottom(node)) {
        const std::unique_ptr<Task> owned(node);
        out = std::move(*owned);
        return true;
    }
    if (takeInjected(lane, out))
        return true;
    if (takeExpander(self, lane)) {
        if (self.deq[l].popBottom(node)) {
            const std::unique_ptr<Task> owned(node);
            out = std::move(*owned);
            return true;
        }
        // The whole batch was stolen before our own pop — fall through
        // and steal some of it back.
    }
    return stealFromSiblings(self, lane, out);
}

bool
TaskPool::takeInjected(Lane lane, Task& out)
{
    MutexLock lock(mu_);
    std::deque<Task>& queue = injected_[laneIndex(lane)];
    if (queue.empty())
        return false;
    out = std::move(queue.front());
    queue.pop_front();
    return true;
}

bool
TaskPool::takeExpander(Worker& self, Lane lane)
{
    const unsigned l = laneIndex(lane);
    std::vector<Task> batch;
    {
        MutexLock lock(mu_);
        std::deque<std::vector<Task>>& queue = expanders_[l];
        if (queue.empty())
            return false;
        batch = std::move(queue.front());
        queue.pop_front();
    }
    // Owner-push in reverse: popBottom is LIFO, so the owner consumes in
    // batch order; thieves take from the other end regardless.
    for (std::size_t i = batch.size(); i-- > 0;) {
        auto node = std::make_unique<Task>(std::move(batch[i]));
        self.deq[l].pushBottom(node.release());
    }
    // The units are now visible in this worker's deque; wake every
    // sibling to come steal.
    announce(true);
    return true;
}

bool
TaskPool::stealFromSiblings(Worker& self, Lane lane, Task& out)
{
    const std::size_t count = workers_.size();
    if (count < 2)
        return false;
    const unsigned l = laneIndex(lane);
    const std::size_t start = self.rng.nextBounded(count);
    for (std::size_t probe = 0; probe < count; ++probe) {
        Worker& victim = *workers_[(start + probe) % count];
        if (&victim == &self)
            continue;
        bool victimEmpty = false;
        while (!victimEmpty) {
            Task* node = nullptr;
            switch (victim.deq[l].steal(node)) {
            case WorkStealDeque<Task*>::Steal::Got: {
                steals_.fetch_add(1, std::memory_order_relaxed);
                const std::unique_ptr<Task> owned(node);
                out = std::move(*owned);
                // Cascade: the victim still has work, so make sure
                // another sleeper comes for it too.
                if (victim.deq[l].sizeEstimate() > 0)
                    announce(false);
                return true;
            }
            case WorkStealDeque<Task*>::Steal::Abort:
                // Lost a race — an element exists, keep contending.
                stealFailures_.fetch_add(1, std::memory_order_relaxed);
                break;
            case WorkStealDeque<Task*>::Steal::Empty:
                victimEmpty = true;
                break;
            }
        }
    }
    return false;
}

void
TaskPool::execute(Task task, Lane lane)
{
    active_.fetch_add(1, std::memory_order_relaxed);
#if defined(__linux__)
    // Batch tasks run niced: once every CPU is busy, lane priority alone
    // cannot preempt a batch unit already executing, but the kernel's
    // scheduler can keep favoring the interactive threads. Reversibility
    // was verified in the constructor (batchNice_ stays 0 otherwise).
    int base = 0;
    const bool demoted = batchNice_ != 0 && lane == Lane::Batch;
    if (demoted) {
        errno = 0;
        base = getpriority(PRIO_PROCESS, 0);
        if (base == -1 && errno != 0)
            base = 0;
        (void)setpriority(PRIO_PROCESS, 0, base + batchNice_);
    }
#else
    (void)lane;
#endif
    task();
#if defined(__linux__)
    if (demoted)
        (void)setpriority(PRIO_PROCESS, 0, base);
#endif
    active_.fetch_sub(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    // Last outstanding task: wake everyone so draining workers (and the
    // destructor's exit predicate) observe the zero.
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        announce(true);
}

void
TaskPool::announce(bool everyone)
{
    {
        MutexLock lock(mu_);
        ++version_;
    }
    if (everyone)
        cv_.notify_all();
    else
        cv_.notify_one();
}

void
TaskPool::pinSelf(unsigned index)
{
#if defined(__linux__)
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(index % cores, &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
        pinnedWorkers_.fetch_add(1, std::memory_order_relaxed);
    } else {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            GGA_WARN("TaskPool: pthread_setaffinity_np failed; workers "
                     "run unpinned");
    }
#else
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
        GGA_WARN("TaskPool: thread pinning is unsupported on this "
                 "platform; workers run unpinned");
    (void)index;
#endif
}

} // namespace gga
