/**
 * @file
 * Legacy entry points: run one (application, graph, configuration)
 * workload on the simulator and collect timing plus functional outputs.
 *
 * DEPRECATED: new code should use the Plan/Session API (api/session.hpp),
 * which returns typed outputs and validates app x config pairs without
 * aborting. These free functions remain as thin shims — they are the
 * registered legacy runners behind the AppRegistry — so tests can assert
 * old-vs-new parity.
 */

#ifndef GGA_APPS_RUNNER_HPP
#define GGA_APPS_RUNNER_HPP

#include <cstdint>

#include "apps/app.hpp"
#include "graph/csr.hpp"
#include "model/algo_props.hpp"
#include "model/config.hpp"
#include "sim/params.hpp"

namespace gga {

/** PageRank: kPrIterations double-buffered sweeps. */
RunResult runPr(const CsrGraph& g, const SystemConfig& cfg,
                const SimParams& params, AppOutputs* out = nullptr);

/** SSSP: topology-driven Bellman-Ford from vertex 0 to convergence. */
RunResult runSssp(const CsrGraph& g, const SystemConfig& cfg,
                  const SimParams& params, AppOutputs* out = nullptr);

/**
 * Maximal independent set: Luby rounds with hashed priorities. @p seed
 * perturbs the priority hash; 0 reproduces the paper runs exactly.
 */
RunResult runMis(const CsrGraph& g, const SystemConfig& cfg,
                 const SimParams& params, AppOutputs* out = nullptr,
                 std::uint64_t seed = 0);

/**
 * Greedy parallel graph coloring (Jones-Plassmann style rounds). @p seed
 * perturbs the priority hash; 0 reproduces the paper runs exactly.
 */
RunResult runClr(const CsrGraph& g, const SystemConfig& cfg,
                 const SimParams& params, AppOutputs* out = nullptr,
                 std::uint64_t seed = 0);

/** Betweenness centrality pieces for source 0 (forward + backward). */
RunResult runBc(const CsrGraph& g, const SystemConfig& cfg,
                const SimParams& params, AppOutputs* out = nullptr);

/** Connected components: ECL-CC-style hook + compress (dynamic). */
RunResult runCc(const CsrGraph& g, const SystemConfig& cfg,
                const SimParams& params, AppOutputs* out = nullptr);

/**
 * Dispatch to the application's runner through the AppRegistry. Fatal if
 * the configuration's update-propagation dimension is invalid for the app
 * (CC requires PushPull; all others require Push or Pull). Prefer
 * Session::tryRun, which rejects invalid pairs without aborting.
 */
RunResult runWorkload(AppId app, const CsrGraph& g, const SystemConfig& cfg,
                      const SimParams& params = SimParams{},
                      AppOutputs* out = nullptr);

} // namespace gga

#endif // GGA_APPS_RUNNER_HPP
