/**
 * @file
 * PageRank (paper: PR). Static traversal; symmetric control (no
 * predicates); source information (push hoists rank/degree of the source
 * into the outer loop, pull gathers per edge).
 *
 * Per iteration: prepare (contrib = rank/deg, zero next), propagate
 * (push: atomicAdd into next[t]; pull: gather contrib[s]), finalize
 * (rank = (1-d)/N + d*next).
 */

#include "apps/runner.hpp"

#include "api/registry.hpp"
#include "apps/kernel_util.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

struct PrState
{
    PrState(Gpu& gpu, const CsrGraph& graph)
        : g(graph),
          gb(gpu.mem(), graph),
          rank(gpu.mem(), graph.numVertices(), "pr.rank"),
          next(gpu.mem(), graph.numVertices(), "pr.next"),
          contrib(gpu.mem(), graph.numVertices(), "pr.contrib"),
          lb(gpu.params().lineBytes)
    {
    }

    const CsrGraph& g;
    GraphBuffers gb;
    DeviceBuffer<float> rank;
    DeviceBuffer<float> next;
    DeviceBuffer<float> contrib;
    std::uint32_t lb;
};

constexpr double kDamping = 0.85;

WarpTask
prInit(Warp& w, PrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    const float r0 = 1.0f / static_cast<float>(st.g.numVertices());
    for (std::uint32_t l = 0; l < lanes; ++l)
        st.rank[v0 + l] = r0;
    AddrSet wr;
    kutil::addRange(wr, st.rank, v0, lanes, st.lb);
    co_await w.store(wr);
}

WarpTask
prPrepare(Warp& w, PrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    kutil::addRange(rd, st.rank, v0, lanes, st.lb);
    co_await w.load(rd);
    co_await w.compute(2);
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        const std::uint32_t d = st.g.degree(v);
        st.contrib[v] = d ? st.rank[v] / static_cast<float>(d) : 0.0f;
        st.next[v] = 0.0f;
    }
    AddrSet wr;
    kutil::addRange(wr, st.contrib, v0, lanes, st.lb);
    kutil::addRange(wr, st.next, v0, lanes, st.lb);
    co_await w.store(wr);
}

WarpTask
prPush(Warp& w, PrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    kutil::addRange(rd, st.contrib, v0, lanes, st.lb);
    co_await w.load(rd);

    const std::uint32_t maxd = kutil::maxDegree(st.g, v0, lanes);
    AddrSet el, words;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        words.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                st.next[t] += st.contrib[v];
                words.pushUnique(kutil::wordOf(st.next, t));
            }
        }
        co_await w.atomic(words, /*needs_value=*/false);
    }
}

WarpTask
prPull(Warp& w, PrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    float acc[32] = {};
    const std::uint32_t maxd = kutil::maxDegree(st.g, v0, lanes);
    AddrSet el, pl;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        pl.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                kutil::addElem(pl, st.contrib, s, st.lb);
            }
        }
        // Blocking sparse remote reads: the defining pull cost.
        co_await w.load(pl);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                acc[l] += st.contrib[s];
            }
        }
        co_await w.compute(1);
    }
    for (std::uint32_t l = 0; l < lanes; ++l)
        st.next[v0 + l] = acc[l];
    AddrSet wr;
    kutil::addRange(wr, st.next, v0, lanes, st.lb);
    co_await w.store(wr);
}

WarpTask
prFinalize(Warp& w, PrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.next, v0, lanes, st.lb);
    co_await w.load(rd);
    co_await w.compute(2);
    const float base =
        (1.0f - static_cast<float>(kDamping)) / st.g.numVertices();
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        st.rank[v] =
            base + static_cast<float>(kDamping) * st.next[v];
    }
    AddrSet wr;
    kutil::addRange(wr, st.rank, v0, lanes, st.lb);
    co_await w.store(wr);
}

} // namespace

RunResult
runPr(const CsrGraph& g, const SystemConfig& cfg, const SimParams& params,
      AppOutputs* out)
{
    GGA_ASSERT(cfg.prop != UpdateProp::PushPull,
               "PR has a static traversal: use Push or Pull");
    Gpu gpu(params, cfg.coh, cfg.con);
    PrState st(gpu, g);
    const VertexId n = g.numVertices();
    const bool push = cfg.prop == UpdateProp::Push;

    gpu.launch("pr.init", n, [&st](Warp& w) { return prInit(w, st); });
    for (std::uint32_t it = 0; it < kPrIterations; ++it) {
        gpu.launch("pr.prepare", n,
                   [&st](Warp& w) { return prPrepare(w, st); });
        if (push)
            gpu.launch("pr.push", n,
                       [&st](Warp& w) { return prPush(w, st); });
        else
            gpu.launch("pr.pull", n,
                       [&st](Warp& w) { return prPull(w, st); });
        gpu.launch("pr.finalize", n,
                   [&st](Warp& w) { return prFinalize(w, st); });
    }

    if (out && out->prRanks)
        *out->prRanks = st.rank.host();
    return collectResult(gpu);
}


namespace {

/** Adapter from the legacy sink signature to the typed AppOutput. */
RunResult
runPrTyped(const CsrGraph& g, const SystemConfig& cfg,
           const SimParams& params, std::uint64_t seed, AppOutput* out)
{
    (void)seed; // PageRank has no stochastic choices
    if (!out)
        return runPr(g, cfg, params, nullptr);
    PrOutput typed;
    AppOutputs sinks;
    sinks.prRanks = &typed.ranks;
    const RunResult r = runPr(g, cfg, params, &sinks);
    *out = std::move(typed);
    return r;
}

} // namespace

void
registerPrApp(AppRegistry& reg)
{
    AppRegistry::Entry e;
    e.id = AppId::Pr;
    e.name = appName(AppId::Pr);
    e.properties = algoProperties(AppId::Pr);
    e.params = SimParams{}; // paper Table IV hardware point
    e.configRequirement = "has a static traversal and requires Push or Pull";
    e.run = &runPrTyped;
    e.runLegacy = &runPr;
    e.validConfig = [](const SystemConfig& cfg) {
        return cfg.prop != UpdateProp::PushPull;
    };
    reg.add(std::move(e));
}

} // namespace gga
