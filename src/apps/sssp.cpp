/**
 * @file
 * Single-source shortest paths (paper: SSSP). Static traversal; source
 * control (the frontier predicate elides whole sources under push);
 * source information (dist[s] hoisted by push).
 *
 * Topology-driven Bellman-Ford with iteration-stamped frontier flags:
 * a vertex is on iteration i's frontier iff stamp[v] == i; improvements
 * stamp the target with i+1.
 */

#include "apps/runner.hpp"

#include "api/registry.hpp"
#include "apps/kernel_util.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

struct SsspState
{
    SsspState(Gpu& gpu, const CsrGraph& graph)
        : g(graph),
          gb(gpu.mem(), graph),
          dist(gpu.mem(), graph.numVertices(), "sssp.dist"),
          stamp(gpu.mem(), graph.numVertices(), "sssp.stamp"),
          lb(gpu.params().lineBytes)
    {
    }

    const CsrGraph& g;
    GraphBuffers gb;
    DeviceBuffer<std::uint32_t> dist;
    DeviceBuffer<std::uint32_t> stamp;
    std::uint32_t lb;
    std::uint32_t iter = 0;
};

WarpTask
ssspInit(Warp& w, SsspState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    for (std::uint32_t l = 0; l < lanes; ++l) {
        st.dist[v0 + l] = kInfDist;
        st.stamp[v0 + l] = 0;
    }
    AddrSet wr;
    kutil::addRange(wr, st.dist, v0, lanes, st.lb);
    kutil::addRange(wr, st.stamp, v0, lanes, st.lb);
    co_await w.store(wr);
}

WarpTask
ssspSeed(Warp& w, SsspState& st)
{
    st.dist[0] = 0;
    st.stamp[0] = 1;
    AddrSet wr;
    kutil::addElem(wr, st.dist, 0, st.lb);
    kutil::addElem(wr, st.stamp, 0, st.lb);
    co_await w.store(wr);
}

WarpTask
ssspPush(Warp& w, SsspState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    const std::uint32_t iter = st.iter;

    AddrSet rd;
    kutil::addRange(rd, st.stamp, v0, lanes, st.lb);
    co_await w.load(rd);

    bool active[32] = {};
    bool any = false;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.stamp[v0 + l] == iter;
        any |= active[l];
    }
    if (!any)
        co_return; // whole warp elided by the source predicate

    rd.clear();
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    kutil::addRange(rd, st.dist, v0, lanes, st.lb);
    co_await w.load(rd);

    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }

    const bool weighted = st.g.hasWeights();
    AddrSet el, words, stamped;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        words.clear();
        stamped.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const EdgeId e = st.g.edgeBegin(v) + j;
                kutil::addElem(el, st.gb.col, e, st.lb);
                if (weighted)
                    kutil::addElem(el, st.gb.weight, e, st.lb);
            }
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const EdgeId e = st.g.edgeBegin(v) + j;
                const VertexId t = st.g.edgeTarget(e);
                const std::uint64_t nd =
                    static_cast<std::uint64_t>(st.dist[v]) +
                    st.g.edgeWeight(e);
                words.pushUnique(kutil::wordOf(st.dist, t));
                if (nd < st.dist[t]) {
                    st.dist[t] = static_cast<std::uint32_t>(nd);
                    st.stamp[t] = iter + 1;
                    kutil::addElem(stamped, st.stamp, t, st.lb);
                }
            }
        }
        // Unconditional sparse remote atomicMin — off the critical path.
        co_await w.atomic(words, /*needs_value=*/false);
        if (!stamped.empty())
            co_await w.store(stamped);
    }
}

WarpTask
ssspPull(Warp& w, SsspState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    const std::uint32_t iter = st.iter;

    AddrSet rd;
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    kutil::addRange(rd, st.dist, v0, lanes, st.lb);
    co_await w.load(rd);

    const std::uint32_t maxd = kutil::maxDegree(st.g, v0, lanes);
    const bool weighted = st.g.hasWeights();
    std::uint64_t best[32];
    for (std::uint32_t l = 0; l < lanes; ++l)
        best[l] = st.dist[v0 + l];

    AddrSet el, sl, dl;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        sl.clear();
        dl.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                kutil::addElem(sl, st.stamp, s, st.lb);
            }
        }
        // Sparse remote reads of the frontier stamps (blocking).
        co_await w.load(sl);
        bool any_active = false;
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v)) {
                const EdgeId e = st.g.edgeBegin(v) + j;
                const VertexId s = st.g.edgeTarget(e);
                if (st.stamp[s] == iter) {
                    kutil::addElem(dl, st.dist, s, st.lb);
                    if (weighted)
                        kutil::addElem(dl, st.gb.weight, e, st.lb);
                    any_active = true;
                }
            }
        }
        if (any_active) {
            co_await w.load(dl);
            for (std::uint32_t l = 0; l < lanes; ++l) {
                const VertexId v = v0 + l;
                if (j < st.g.degree(v)) {
                    const EdgeId e = st.g.edgeBegin(v) + j;
                    const VertexId s = st.g.edgeTarget(e);
                    if (st.stamp[s] == iter) {
                        const std::uint64_t nd =
                            static_cast<std::uint64_t>(st.dist[s]) +
                            st.g.edgeWeight(e);
                        best[l] = std::min(best[l], nd);
                    }
                }
            }
            co_await w.compute(1);
        }
    }

    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (best[l] < st.dist[v]) {
            st.dist[v] = static_cast<std::uint32_t>(best[l]);
            st.stamp[v] = iter + 1;
            kutil::addElem(wr, st.dist, v, st.lb);
            kutil::addElem(wr, st.stamp, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

} // namespace

RunResult
runSssp(const CsrGraph& g, const SystemConfig& cfg, const SimParams& params,
        AppOutputs* out)
{
    GGA_ASSERT(cfg.prop != UpdateProp::PushPull,
               "SSSP has a static traversal: use Push or Pull");
    Gpu gpu(params, cfg.coh, cfg.con);
    SsspState st(gpu, g);
    const VertexId n = g.numVertices();
    const bool push = cfg.prop == UpdateProp::Push;

    gpu.launch("sssp.init", n, [&st](Warp& w) { return ssspInit(w, st); });
    gpu.launch("sssp.seed", 1, [&st](Warp& w) { return ssspSeed(w, st); });

    for (st.iter = 1; st.iter <= kMaxSweeps; ++st.iter) {
        if (push)
            gpu.launch("sssp.push", n,
                       [&st](Warp& w) { return ssspPush(w, st); });
        else
            gpu.launch("sssp.pull", n,
                       [&st](Warp& w) { return ssspPull(w, st); });
        bool frontier = false;
        for (VertexId v = 0; v < n && !frontier; ++v)
            frontier = st.stamp[v] == st.iter + 1;
        if (!frontier)
            break;
    }
    if (st.iter > kMaxSweeps)
        GGA_WARN("SSSP hit the sweep cap without converging");

    if (out && out->ssspDist)
        *out->ssspDist = st.dist.host();
    return collectResult(gpu);
}


namespace {

/** Adapter from the legacy sink signature to the typed AppOutput. */
RunResult
runSsspTyped(const CsrGraph& g, const SystemConfig& cfg,
             const SimParams& params, std::uint64_t seed, AppOutput* out)
{
    (void)seed; // SSSP's source is fixed; no stochastic choices
    if (!out)
        return runSssp(g, cfg, params, nullptr);
    SsspOutput typed;
    AppOutputs sinks;
    sinks.ssspDist = &typed.dist;
    const RunResult r = runSssp(g, cfg, params, &sinks);
    *out = std::move(typed);
    return r;
}

} // namespace

void
registerSsspApp(AppRegistry& reg)
{
    AppRegistry::Entry e;
    e.id = AppId::Sssp;
    e.name = appName(AppId::Sssp);
    e.properties = algoProperties(AppId::Sssp);
    e.params = SimParams{}; // paper Table IV hardware point
    e.configRequirement = "has a static traversal and requires Push or Pull";
    e.run = &runSsspTyped;
    e.runLegacy = &runSssp;
    e.validConfig = [](const SystemConfig& cfg) {
        return cfg.prop != UpdateProp::PushPull;
    };
    reg.add(std::move(e));
}

} // namespace gga
