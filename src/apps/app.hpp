/**
 * @file
 * Shared application scaffolding: graph device buffers, run results, and
 * functional output sinks.
 */

#ifndef GGA_APPS_APP_HPP
#define GGA_APPS_APP_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "sim/address_space.hpp"
#include "sim/gpu.hpp"
#include "sim/mem_stats.hpp"
#include "sim/stall.hpp"

namespace gga {

/** CSR arrays placed in the simulated address space. */
struct GraphBuffers
{
    GraphBuffers(AddressSpace& space, const CsrGraph& g);

    DeviceBuffer<EdgeId> rowOff;
    DeviceBuffer<VertexId> col;
    DeviceBuffer<std::uint32_t> weight; ///< empty when the graph is unweighted
};

/** Timing outcome of one workload run. */
struct RunResult
{
    Cycles cycles = 0;          ///< total simulated GPU time
    StallBreakdown breakdown;   ///< per-category cycles summed over SMs
    MemStats mem;               ///< memory-system counters
    std::uint32_t kernels = 0;  ///< kernel launches
    std::uint64_t events = 0;   ///< simulator events processed (diagnostics)

    /** Field-wise equality (shard-invariance / determinism tests). */
    bool operator==(const RunResult&) const = default;
};

/** Collect a RunResult from a finished Gpu. */
RunResult collectResult(Gpu& gpu);

/**
 * Optional sinks for each application's functional output.
 *
 * DEPRECATED: the Plan/Session API (api/outputs.hpp) returns owned, typed
 * per-app outputs instead of this raw-pointer grab-bag. Kept for the
 * legacy runX shims and parity tests.
 */
struct AppOutputs
{
    std::vector<float>* prRanks = nullptr;
    std::vector<std::uint32_t>* ssspDist = nullptr;
    std::vector<std::uint32_t>* misState = nullptr; ///< 1 in set, 2 out
    std::vector<std::uint32_t>* colors = nullptr;
    std::vector<double>* bcDelta = nullptr;
    std::vector<std::uint32_t>* bcLevel = nullptr;
    std::vector<double>* bcSigma = nullptr;
    std::vector<std::uint32_t>* ccLabels = nullptr;
};

/** Iteration safety caps (deterministic termination with a warning). */
inline constexpr std::uint32_t kMaxSweeps = 4096;
inline constexpr std::uint32_t kPrIterations = 10;

} // namespace gga

#endif // GGA_APPS_APP_HPP
