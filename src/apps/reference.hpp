/**
 * @file
 * Sequential CPU reference implementations used to validate the simulated
 * kernels' functional outputs.
 */

#ifndef GGA_APPS_REFERENCE_HPP
#define GGA_APPS_REFERENCE_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace gga::ref {

/** Double-precision PageRank, @p iterations double-buffered sweeps. */
std::vector<double> pagerank(const CsrGraph& g, std::uint32_t iterations,
                             double damping = 0.85);

/** Dijkstra distances from @p source using the graph's edge weights. */
std::vector<std::uint32_t> dijkstra(const CsrGraph& g, VertexId source);

/** Is @p state (1 = in set, 2 = out) a valid maximal independent set? */
bool validMis(const CsrGraph& g, const std::vector<std::uint32_t>& state);

/** Is @p colors a proper coloring with every vertex colored (!= inf)? */
bool validColoring(const CsrGraph& g,
                   const std::vector<std::uint32_t>& colors);

/** Brandes betweenness pieces for one source: level, sigma, delta. */
struct BcRef
{
    std::vector<std::uint32_t> level;
    std::vector<double> sigma;
    std::vector<double> delta;
};
BcRef brandes(const CsrGraph& g, VertexId source);

/** Connected-component labels via union-find (canonical: min vertex id). */
std::vector<std::uint32_t> components(const CsrGraph& g);

/** Do two component labelings describe the same partition? */
bool samePartition(const std::vector<std::uint32_t>& a,
                   const std::vector<std::uint32_t>& b);

} // namespace gga::ref

#endif // GGA_APPS_REFERENCE_HPP
