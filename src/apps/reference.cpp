#include "apps/reference.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "support/log.hpp"
#include "support/types.hpp"

namespace gga::ref {

std::vector<double>
pagerank(const CsrGraph& g, std::uint32_t iterations, double damping)
{
    const VertexId n = g.numVertices();
    std::vector<double> rank(n, n ? 1.0 / n : 0.0);
    std::vector<double> next(n);
    for (std::uint32_t it = 0; it < iterations; ++it) {
        std::fill(next.begin(), next.end(), 0.0);
        for (VertexId v = 0; v < n; ++v) {
            const std::uint32_t deg = g.degree(v);
            if (deg == 0)
                continue;
            const double contrib = rank[v] / deg;
            for (VertexId t : g.neighbors(v))
                next[t] += contrib;
        }
        for (VertexId v = 0; v < n; ++v)
            rank[v] = (1.0 - damping) / n + damping * next[v];
    }
    return rank;
}

std::vector<std::uint32_t>
dijkstra(const CsrGraph& g, VertexId source)
{
    const VertexId n = g.numVertices();
    std::vector<std::uint32_t> dist(n, kInfDist);
    using Item = std::pair<std::uint64_t, VertexId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[source] = 0;
    pq.push({0, source});
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v])
            continue;
        const EdgeId begin = g.edgeBegin(v);
        const EdgeId end = g.edgeEnd(v);
        for (EdgeId e = begin; e < end; ++e) {
            const VertexId t = g.edgeTarget(e);
            const std::uint64_t nd = d + g.edgeWeight(e);
            if (nd < dist[t]) {
                dist[t] = static_cast<std::uint32_t>(nd);
                pq.push({nd, t});
            }
        }
    }
    return dist;
}

bool
validMis(const CsrGraph& g, const std::vector<std::uint32_t>& state)
{
    const VertexId n = g.numVertices();
    if (state.size() != n)
        return false;
    for (VertexId v = 0; v < n; ++v) {
        if (state[v] != 1 && state[v] != 2)
            return false; // undecided vertex left over
        bool has_in_neighbor = false;
        for (VertexId t : g.neighbors(v)) {
            if (state[t] == 1) {
                has_in_neighbor = true;
                if (state[v] == 1)
                    return false; // two adjacent members
            }
        }
        if (state[v] == 2 && !has_in_neighbor)
            return false; // not maximal
    }
    return true;
}

bool
validColoring(const CsrGraph& g, const std::vector<std::uint32_t>& colors)
{
    const VertexId n = g.numVertices();
    if (colors.size() != n)
        return false;
    for (VertexId v = 0; v < n; ++v) {
        if (colors[v] == kInfDist)
            return false;
        for (VertexId t : g.neighbors(v)) {
            if (t != v && colors[t] == colors[v])
                return false;
        }
    }
    return true;
}

BcRef
brandes(const CsrGraph& g, VertexId source)
{
    const VertexId n = g.numVertices();
    BcRef r;
    r.level.assign(n, kInfDist);
    r.sigma.assign(n, 0.0);
    r.delta.assign(n, 0.0);

    r.level[source] = 0;
    r.sigma[source] = 1.0;
    std::vector<VertexId> order;
    order.reserve(n);
    std::queue<VertexId> q;
    q.push(source);
    while (!q.empty()) {
        const VertexId v = q.front();
        q.pop();
        order.push_back(v);
        for (VertexId t : g.neighbors(v)) {
            if (r.level[t] == kInfDist) {
                r.level[t] = r.level[v] + 1;
                q.push(t);
            }
            if (r.level[t] == r.level[v] + 1)
                r.sigma[t] += r.sigma[v];
        }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const VertexId v = *it;
        for (VertexId t : g.neighbors(v)) {
            if (r.level[t] == r.level[v] + 1 && r.sigma[t] > 0.0)
                r.delta[v] += r.sigma[v] / r.sigma[t] * (1.0 + r.delta[t]);
        }
    }
    return r;
}

std::vector<std::uint32_t>
components(const CsrGraph& g)
{
    const VertexId n = g.numVertices();
    std::vector<std::uint32_t> parent(n);
    for (VertexId v = 0; v < n; ++v)
        parent[v] = v;
    const auto find = [&parent](VertexId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (VertexId v = 0; v < n; ++v) {
        for (VertexId t : g.neighbors(v)) {
            const VertexId rv = find(v);
            const VertexId rt = find(t);
            if (rv != rt)
                parent[std::max(rv, rt)] = std::min(rv, rt);
        }
    }
    std::vector<std::uint32_t> label(n);
    for (VertexId v = 0; v < n; ++v)
        label[v] = find(v);
    return label;
}

bool
samePartition(const std::vector<std::uint32_t>& a,
              const std::vector<std::uint32_t>& b)
{
    if (a.size() != b.size())
        return false;
    std::unordered_map<std::uint64_t, std::uint32_t> ab, ba;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto [it1, new1] = ab.try_emplace(a[i], b[i]);
        if (!new1 && it1->second != b[i])
            return false;
        const auto [it2, new2] = ba.try_emplace(b[i], a[i]);
        if (!new2 && it2->second != a[i])
            return false;
    }
    return true;
}

} // namespace gga::ref
