/**
 * @file
 * Maximal independent set (paper: MIS). Static traversal; symmetric
 * control and information: both sides predicate on "undecided" and read
 * priorities, so neither push nor pull elides more work structurally.
 *
 * Luby rounds with unique hashed priorities: each round every undecided
 * vertex whose priority exceeds every undecided neighbor's joins the set;
 * its neighbors drop out.
 */

#include "apps/runner.hpp"

#include "api/registry.hpp"
#include "apps/kernel_util.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

namespace {

constexpr std::uint32_t kUndecided = 0;
constexpr std::uint32_t kInSet = 1;
constexpr std::uint32_t kOut = 2;

struct MisState
{
    MisState(Gpu& gpu, const CsrGraph& graph, std::uint64_t seed_)
        : g(graph),
          seed(seed_),
          gb(gpu.mem(), graph),
          state(gpu.mem(), graph.numVertices(), "mis.state"),
          pri(gpu.mem(), graph.numVertices(), "mis.pri"),
          nbrMax(gpu.mem(), graph.numVertices(), "mis.nbrMax"),
          winnerRound(gpu.mem(), graph.numVertices(), "mis.winnerRound"),
          lb(gpu.params().lineBytes)
    {
    }

    const CsrGraph& g;
    std::uint64_t seed;
    GraphBuffers gb;
    DeviceBuffer<std::uint32_t> state;
    DeviceBuffer<std::uint32_t> pri;
    DeviceBuffer<std::uint32_t> nbrMax;
    DeviceBuffer<std::uint32_t> winnerRound;
    std::uint32_t lb;
    std::uint32_t round = 0;
};

/**
 * Unique deterministic 32-bit priority: hashed bits above, the id below
 * (Pannotia-style int priorities, made collision-free). @p seed perturbs
 * the hashed bits only — uniqueness comes from the id bits — and seed 0
 * reproduces the unseeded paper runs exactly.
 */
std::uint32_t
priorityOf(VertexId v, VertexId n, std::uint64_t seed)
{
    std::uint32_t id_bits = 1;
    while ((1u << id_bits) < n)
        ++id_bits;
    return (static_cast<std::uint32_t>(hashMix64(v ^ seed)) << id_bits) | v;
}

WarpTask
misInit(Warp& w, MisState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        st.state[v] = kUndecided;
        st.pri[v] = priorityOf(v, st.g.numVertices(), st.seed);
        st.winnerRound[v] = kInfDist;
    }
    AddrSet wr;
    kutil::addRange(wr, st.state, v0, lanes, st.lb);
    kutil::addRange(wr, st.pri, v0, lanes, st.lb);
    kutil::addRange(wr, st.winnerRound, v0, lanes, st.lb);
    co_await w.store(wr);
}

WarpTask
misReset(Warp& w, MisState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.state, v0, lanes, st.lb);
    co_await w.load(rd);
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (st.state[v] == kUndecided) {
            st.nbrMax[v] = 0;
            kutil::addElem(wr, st.nbrMax, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

WarpTask
misPropPush(Warp& w, MisState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.state, v0, lanes, st.lb);
    kutil::addRange(rd, st.pri, v0, lanes, st.lb);
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    bool active[32];
    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.state[v0 + l] == kUndecided;
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }

    AddrSet el, words;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        words.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                st.nbrMax[t] = std::max(st.nbrMax[t], st.pri[v]);
                words.pushUnique(kutil::wordOf(st.nbrMax, t));
            }
        }
        // Unconditional atomicMax: no target-state gather on the push path.
        co_await w.atomic(words, /*needs_value=*/false);
    }
}

WarpTask
misPropPull(Warp& w, MisState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.state, v0, lanes, st.lb);
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    bool active[32];
    std::uint32_t acc[32] = {};
    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.state[v0 + l] == kUndecided;
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }

    AddrSet el, sl;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        sl.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        // state[s] and pri[s] are independent loads off the same index;
        // the kernel issues them as one gather (compiler-scheduled ILP).
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                kutil::addElem(sl, st.state, s, st.lb);
                kutil::addElem(sl, st.pri, s, st.lb);
            }
        }
        co_await w.load(sl);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                if (st.state[s] == kUndecided)
                    acc[l] = std::max(acc[l], st.pri[s]);
            }
        }
        co_await w.compute(1);
    }
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (active[l]) {
            st.nbrMax[v] = acc[l];
            kutil::addElem(wr, st.nbrMax, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

WarpTask
misDecide(Warp& w, MisState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.state, v0, lanes, st.lb);
    kutil::addRange(rd, st.pri, v0, lanes, st.lb);
    kutil::addRange(rd, st.nbrMax, v0, lanes, st.lb);
    co_await w.load(rd);
    co_await w.compute(1);
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (st.state[v] == kUndecided && st.pri[v] > st.nbrMax[v]) {
            st.state[v] = kInSet;
            st.winnerRound[v] = st.round;
            kutil::addElem(wr, st.state, v, st.lb);
            kutil::addElem(wr, st.winnerRound, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

WarpTask
misOutPush(Warp& w, MisState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.winnerRound, v0, lanes, st.lb);
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    bool active[32];
    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.winnerRound[v0 + l] == st.round;
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }
    AddrSet el, words;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        words.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                if (st.state[t] == kUndecided)
                    st.state[t] = kOut;
                words.pushUnique(kutil::wordOf(st.state, t));
            }
        }
        co_await w.atomic(words, /*needs_value=*/false);
    }
}

WarpTask
misOutPull(Warp& w, MisState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.state, v0, lanes, st.lb);
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    bool active[32];
    bool drop[32] = {};
    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.state[v0 + l] == kUndecided;
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }
    AddrSet el, sl;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        sl.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && !drop[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        if (el.empty())
            break;
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && !drop[l] && j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                kutil::addElem(sl, st.state, s, st.lb);
            }
        }
        co_await w.load(sl);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && !drop[l] && j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                if (st.state[s] == kInSet)
                    drop[l] = true;
            }
        }
    }
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (drop[l]) {
            st.state[v] = kOut;
            kutil::addElem(wr, st.state, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

} // namespace

RunResult
runMis(const CsrGraph& g, const SystemConfig& cfg, const SimParams& params,
       AppOutputs* out, std::uint64_t seed)
{
    GGA_ASSERT(cfg.prop != UpdateProp::PushPull,
               "MIS has a static traversal: use Push or Pull");
    Gpu gpu(params, cfg.coh, cfg.con);
    MisState st(gpu, g, seed);
    const VertexId n = g.numVertices();
    const bool push = cfg.prop == UpdateProp::Push;

    gpu.launch("mis.init", n, [&st](Warp& w) { return misInit(w, st); });
    for (st.round = 1; st.round <= kMaxSweeps; ++st.round) {
        gpu.launch("mis.reset", n,
                   [&st](Warp& w) { return misReset(w, st); });
        if (push)
            gpu.launch("mis.prop.push", n,
                       [&st](Warp& w) { return misPropPush(w, st); });
        else
            gpu.launch("mis.prop.pull", n,
                       [&st](Warp& w) { return misPropPull(w, st); });
        gpu.launch("mis.decide", n,
                   [&st](Warp& w) { return misDecide(w, st); });
        if (push)
            gpu.launch("mis.out.push", n,
                       [&st](Warp& w) { return misOutPush(w, st); });
        else
            gpu.launch("mis.out.pull", n,
                       [&st](Warp& w) { return misOutPull(w, st); });
        bool undecided = false;
        for (VertexId v = 0; v < n && !undecided; ++v)
            undecided = st.state[v] == kUndecided;
        if (!undecided)
            break;
    }

    if (out && out->misState)
        *out->misState = st.state.host();
    return collectResult(gpu);
}


namespace {

/** Adapter from the legacy sink signature to the typed AppOutput. */
RunResult
runMisTyped(const CsrGraph& g, const SystemConfig& cfg,
            const SimParams& params, std::uint64_t seed, AppOutput* out)
{
    if (!out)
        return runMis(g, cfg, params, nullptr, seed);
    MisOutput typed;
    AppOutputs sinks;
    sinks.misState = &typed.state;
    const RunResult r = runMis(g, cfg, params, &sinks, seed);
    *out = std::move(typed);
    return r;
}

} // namespace

void
registerMisApp(AppRegistry& reg)
{
    AppRegistry::Entry e;
    e.id = AppId::Mis;
    e.name = appName(AppId::Mis);
    e.properties = algoProperties(AppId::Mis);
    e.params = SimParams{}; // paper Table IV hardware point
    e.configRequirement = "has a static traversal and requires Push or Pull";
    e.run = &runMisTyped;
    e.runLegacy = [](const CsrGraph& g, const SystemConfig& cfg,
                     const SimParams& params, AppOutputs* out) {
        return runMis(g, cfg, params, out);
    };
    e.validConfig = [](const SystemConfig& cfg) {
        return cfg.prop != UpdateProp::PushPull;
    };
    reg.add(std::move(e));
}

} // namespace gga
