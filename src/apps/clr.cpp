/**
 * @file
 * Graph coloring (paper: CLR). Static traversal; symmetric control;
 * target information (the accumulating neighborhood state sits at the
 * target, which pull hoists).
 *
 * Jones-Plassmann-style rounds with unique hashed priorities: in round r,
 * every uncolored vertex whose priority exceeds all uncolored neighbors'
 * takes color r.
 */

#include "apps/runner.hpp"

#include "api/registry.hpp"
#include "apps/kernel_util.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace gga {

namespace {

struct ClrState
{
    ClrState(Gpu& gpu, const CsrGraph& graph, std::uint64_t seed_)
        : g(graph),
          seed(seed_),
          gb(gpu.mem(), graph),
          color(gpu.mem(), graph.numVertices(), "clr.color"),
          pri(gpu.mem(), graph.numVertices(), "clr.pri"),
          nbrMax(gpu.mem(), graph.numVertices(), "clr.nbrMax"),
          lb(gpu.params().lineBytes)
    {
    }

    const CsrGraph& g;
    std::uint64_t seed;
    GraphBuffers gb;
    DeviceBuffer<std::uint32_t> color;
    DeviceBuffer<std::uint32_t> pri;
    DeviceBuffer<std::uint32_t> nbrMax;
    std::uint32_t lb;
    std::uint32_t round = 0;
};

/**
 * Unique deterministic 32-bit priority (hash above, id below). @p seed
 * perturbs the hashed bits only; seed 0 reproduces the unseeded runs.
 */
std::uint32_t
priorityOf(VertexId v, VertexId n, std::uint64_t seed)
{
    std::uint32_t id_bits = 1;
    while ((1u << id_bits) < n)
        ++id_bits;
    return (static_cast<std::uint32_t>(hashMix64(v ^ 0x636c72ull ^ seed))
            << id_bits) |
           v;
}

WarpTask
clrInit(Warp& w, ClrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        st.color[v] = kInfDist;
        st.pri[v] = priorityOf(v, st.g.numVertices(), st.seed);
        st.nbrMax[v] = 0;
    }
    AddrSet wr;
    kutil::addRange(wr, st.color, v0, lanes, st.lb);
    kutil::addRange(wr, st.pri, v0, lanes, st.lb);
    kutil::addRange(wr, st.nbrMax, v0, lanes, st.lb);
    co_await w.store(wr);
}

WarpTask
clrReset(Warp& w, ClrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.color, v0, lanes, st.lb);
    co_await w.load(rd);
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (st.color[v] == kInfDist) {
            st.nbrMax[v] = 0;
            kutil::addElem(wr, st.nbrMax, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

WarpTask
clrPropPush(Warp& w, ClrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.color, v0, lanes, st.lb);
    kutil::addRange(rd, st.pri, v0, lanes, st.lb);
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    bool active[32];
    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.color[v0 + l] == kInfDist;
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }
    AddrSet el, words;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        words.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                st.nbrMax[t] = std::max(st.nbrMax[t], st.pri[v]);
                words.pushUnique(kutil::wordOf(st.nbrMax, t));
            }
        }
        co_await w.atomic(words, /*needs_value=*/false);
    }
}

WarpTask
clrPropPull(Warp& w, ClrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.color, v0, lanes, st.lb);
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    bool active[32];
    std::uint32_t acc[32] = {};
    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.color[v0 + l] == kInfDist;
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }
    AddrSet el, cl;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        cl.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        // color[s] and pri[s] are independent loads off the same index;
        // the kernel issues them as one gather (compiler-scheduled ILP).
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                kutil::addElem(cl, st.color, s, st.lb);
                kutil::addElem(cl, st.pri, s, st.lb);
            }
        }
        co_await w.load(cl);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                if (st.color[s] == kInfDist)
                    acc[l] = std::max(acc[l], st.pri[s]);
            }
        }
        co_await w.compute(1);
    }
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (active[l]) {
            st.nbrMax[v] = acc[l];
            kutil::addElem(wr, st.nbrMax, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

WarpTask
clrAssign(Warp& w, ClrState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.color, v0, lanes, st.lb);
    kutil::addRange(rd, st.pri, v0, lanes, st.lb);
    kutil::addRange(rd, st.nbrMax, v0, lanes, st.lb);
    co_await w.load(rd);
    co_await w.compute(1);
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (st.color[v] == kInfDist && st.pri[v] > st.nbrMax[v]) {
            st.color[v] = st.round;
            kutil::addElem(wr, st.color, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

} // namespace

RunResult
runClr(const CsrGraph& g, const SystemConfig& cfg, const SimParams& params,
       AppOutputs* out, std::uint64_t seed)
{
    GGA_ASSERT(cfg.prop != UpdateProp::PushPull,
               "CLR has a static traversal: use Push or Pull");
    Gpu gpu(params, cfg.coh, cfg.con);
    ClrState st(gpu, g, seed);
    const VertexId n = g.numVertices();
    const bool push = cfg.prop == UpdateProp::Push;

    gpu.launch("clr.init", n, [&st](Warp& w) { return clrInit(w, st); });
    for (st.round = 1; st.round <= kMaxSweeps; ++st.round) {
        gpu.launch("clr.reset", n,
                   [&st](Warp& w) { return clrReset(w, st); });
        if (push)
            gpu.launch("clr.prop.push", n,
                       [&st](Warp& w) { return clrPropPush(w, st); });
        else
            gpu.launch("clr.prop.pull", n,
                       [&st](Warp& w) { return clrPropPull(w, st); });
        gpu.launch("clr.assign", n,
                   [&st](Warp& w) { return clrAssign(w, st); });
        bool uncolored = false;
        for (VertexId v = 0; v < n && !uncolored; ++v)
            uncolored = st.color[v] == kInfDist;
        if (!uncolored)
            break;
    }

    if (out && out->colors)
        *out->colors = st.color.host();
    return collectResult(gpu);
}


namespace {

/** Adapter from the legacy sink signature to the typed AppOutput. */
RunResult
runClrTyped(const CsrGraph& g, const SystemConfig& cfg,
            const SimParams& params, std::uint64_t seed, AppOutput* out)
{
    if (!out)
        return runClr(g, cfg, params, nullptr, seed);
    ClrOutput typed;
    AppOutputs sinks;
    sinks.colors = &typed.colors;
    const RunResult r = runClr(g, cfg, params, &sinks, seed);
    *out = std::move(typed);
    return r;
}

} // namespace

void
registerClrApp(AppRegistry& reg)
{
    AppRegistry::Entry e;
    e.id = AppId::Clr;
    e.name = appName(AppId::Clr);
    e.properties = algoProperties(AppId::Clr);
    e.params = SimParams{}; // paper Table IV hardware point
    e.configRequirement = "has a static traversal and requires Push or Pull";
    e.run = &runClrTyped;
    e.runLegacy = [](const CsrGraph& g, const SystemConfig& cfg,
                     const SimParams& params, AppOutputs* out) {
        return runClr(g, cfg, params, out);
    };
    e.validConfig = [](const SystemConfig& cfg) {
        return cfg.prop != UpdateProp::PushPull;
    };
    reg.add(std::move(e));
}

} // namespace gga
