#include "apps/app.hpp"

namespace gga {

GraphBuffers::GraphBuffers(AddressSpace& space, const CsrGraph& g)
    : rowOff(space, g.rowOffsets(), "csr.rowOff"),
      col(space, g.colIndices(), "csr.col"),
      weight(space, g.weights(), "csr.weight")
{
}

RunResult
collectResult(Gpu& gpu)
{
    RunResult r;
    r.cycles = gpu.now();
    r.breakdown = gpu.totalBreakdown();
    r.mem = gpu.memStats();
    r.kernels = gpu.kernelsLaunched();
    r.events = gpu.engine().processedEvents();
    return r;
}

} // namespace gga
