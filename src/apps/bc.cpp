/**
 * @file
 * Betweenness centrality pieces for one source (paper: BC). Static
 * traversal; source control (frontier predicate); symmetric information.
 *
 * Level-synchronous forward BFS computing shortest-path counts (sigma),
 * then backward dependency accumulation (delta). Push uses atomicAdds
 * into sigma / the backward accumulator; pull gathers from neighbors.
 */

#include "apps/runner.hpp"

#include "api/registry.hpp"
#include "apps/kernel_util.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

struct BcState
{
    BcState(Gpu& gpu, const CsrGraph& graph)
        : g(graph),
          gb(gpu.mem(), graph),
          level(gpu.mem(), graph.numVertices(), "bc.level"),
          sigma(gpu.mem(), graph.numVertices(), "bc.sigma"),
          delta(gpu.mem(), graph.numVertices(), "bc.delta"),
          acc(gpu.mem(), graph.numVertices(), "bc.acc"),
          lb(gpu.params().lineBytes)
    {
    }

    const CsrGraph& g;
    GraphBuffers gb;
    DeviceBuffer<std::uint32_t> level;
    DeviceBuffer<double> sigma;
    DeviceBuffer<double> delta;
    DeviceBuffer<double> acc;
    std::uint32_t lb;
    std::uint32_t curLevel = 0;
};

WarpTask
bcInit(Warp& w, BcState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        st.level[v] = kInfDist;
        st.sigma[v] = 0.0;
        st.delta[v] = 0.0;
        st.acc[v] = 0.0;
    }
    AddrSet wr;
    kutil::addRange(wr, st.level, v0, lanes, st.lb);
    kutil::addRange(wr, st.sigma, v0, lanes, st.lb);
    co_await w.store(wr);
    wr.clear();
    kutil::addRange(wr, st.delta, v0, lanes, st.lb);
    kutil::addRange(wr, st.acc, v0, lanes, st.lb);
    co_await w.store(wr);
}

WarpTask
bcSeed(Warp& w, BcState& st)
{
    st.level[0] = 0;
    st.sigma[0] = 1.0;
    AddrSet wr;
    kutil::addElem(wr, st.level, 0, st.lb);
    kutil::addElem(wr, st.sigma, 0, st.lb);
    co_await w.store(wr);
}

WarpTask
bcFwdPush(Warp& w, BcState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    const std::uint32_t lv = st.curLevel;

    AddrSet rd;
    kutil::addRange(rd, st.level, v0, lanes, st.lb);
    co_await w.load(rd);

    bool active[32];
    bool any = false;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.level[v0 + l] == lv;
        any |= active[l];
    }
    if (!any)
        co_return;

    rd.clear();
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    kutil::addRange(rd, st.sigma, v0, lanes, st.lb);
    co_await w.load(rd);

    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }
    AddrSet el, ll, words, newly;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        ll.clear();
        words.clear();
        newly.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                kutil::addElem(ll, st.level, t, st.lb);
            }
        }
        // Target-level gather: the tpred cost BC's push cannot avoid.
        co_await w.load(ll);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                if (st.level[t] == kInfDist) {
                    st.level[t] = lv + 1; // benign same-value race
                    kutil::addElem(newly, st.level, t, st.lb);
                }
                if (st.level[t] == lv + 1) {
                    st.sigma[t] += st.sigma[v];
                    words.pushUnique(kutil::wordOf(st.sigma, t));
                }
            }
        }
        if (!words.empty())
            co_await w.atomic(words, /*needs_value=*/false);
        if (!newly.empty())
            co_await w.store(newly);
    }
}

WarpTask
bcFwdPull(Warp& w, BcState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    const std::uint32_t lv = st.curLevel;

    AddrSet rd;
    kutil::addRange(rd, st.level, v0, lanes, st.lb);
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    bool active[32];
    double acc[32] = {};
    bool found[32] = {};
    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.level[v0 + l] == kInfDist;
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }
    if (maxd == 0)
        co_return;

    AddrSet el, ll, sl;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        ll.clear();
        sl.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                kutil::addElem(ll, st.level, s, st.lb);
            }
        }
        co_await w.load(ll);
        bool any = false;
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId s = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                if (st.level[s] == lv) {
                    kutil::addElem(sl, st.sigma, s, st.lb);
                    any = true;
                }
            }
        }
        if (any) {
            co_await w.load(sl);
            for (std::uint32_t l = 0; l < lanes; ++l) {
                const VertexId v = v0 + l;
                if (active[l] && j < st.g.degree(v)) {
                    const VertexId s =
                        st.g.edgeTarget(st.g.edgeBegin(v) + j);
                    if (st.level[s] == lv) {
                        acc[l] += st.sigma[s];
                        found[l] = true;
                    }
                }
            }
            co_await w.compute(1);
        }
    }
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (found[l]) {
            st.level[v] = lv + 1;
            st.sigma[v] = acc[l];
            kutil::addElem(wr, st.level, v, st.lb);
            kutil::addElem(wr, st.sigma, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

WarpTask
bcBwdPush(Warp& w, BcState& st)
{
    // Sources are the deeper vertices (level == curLevel + 1); they push
    // (1 + delta)/sigma into the accumulators of their predecessors.
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    const std::uint32_t lv = st.curLevel;

    AddrSet rd;
    kutil::addRange(rd, st.level, v0, lanes, st.lb);
    co_await w.load(rd);

    bool active[32];
    bool any = false;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.level[v0 + l] == lv + 1;
        any |= active[l];
    }
    if (!any)
        co_return;

    rd.clear();
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    kutil::addRange(rd, st.sigma, v0, lanes, st.lb);
    kutil::addRange(rd, st.delta, v0, lanes, st.lb);
    co_await w.load(rd);

    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }
    AddrSet el, ll, words;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        ll.clear();
        words.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId u = v0 + l;
            if (active[l] && j < st.g.degree(u))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(u) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId u = v0 + l;
            if (active[l] && j < st.g.degree(u)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(u) + j);
                kutil::addElem(ll, st.level, t, st.lb);
            }
        }
        co_await w.load(ll);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId u = v0 + l;
            if (active[l] && j < st.g.degree(u)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(u) + j);
                if (st.level[t] == lv && st.sigma[u] > 0.0) {
                    st.acc[t] += (1.0 + st.delta[u]) / st.sigma[u];
                    words.pushUnique(kutil::wordOf(st.acc, t));
                }
            }
        }
        if (!words.empty())
            co_await w.atomic(words, /*needs_value=*/false);
    }
}

WarpTask
bcBwdFinalize(Warp& w, BcState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    const std::uint32_t lv = st.curLevel;
    AddrSet rd;
    kutil::addRange(rd, st.level, v0, lanes, st.lb);
    co_await w.load(rd);
    bool active[32];
    bool any = false;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.level[v0 + l] == lv;
        any |= active[l];
    }
    if (!any)
        co_return;
    rd.clear();
    kutil::addRange(rd, st.acc, v0, lanes, st.lb);
    kutil::addRange(rd, st.sigma, v0, lanes, st.lb);
    co_await w.load(rd);
    co_await w.compute(2);
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (active[l]) {
            st.delta[v] = st.sigma[v] * st.acc[v];
            kutil::addElem(wr, st.delta, v, st.lb);
        }
    }
    co_await w.store(wr);
}

WarpTask
bcBwdPull(Warp& w, BcState& st)
{
    // Predecessors (level == curLevel) gather from their successors.
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    const std::uint32_t lv = st.curLevel;

    AddrSet rd;
    kutil::addRange(rd, st.level, v0, lanes, st.lb);
    co_await w.load(rd);

    bool active[32];
    bool any = false;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        active[l] = st.level[v0 + l] == lv;
        any |= active[l];
    }
    if (!any)
        co_return;

    rd.clear();
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    kutil::addRange(rd, st.sigma, v0, lanes, st.lb);
    co_await w.load(rd);

    std::uint32_t maxd = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        if (active[l])
            maxd = std::max(maxd, st.g.degree(v0 + l));
    }
    double acc[32] = {};
    AddrSet el, ll, sl;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        ll.clear();
        sl.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v))
                kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j, st.lb);
        }
        co_await w.load(el);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                kutil::addElem(ll, st.level, t, st.lb);
            }
        }
        co_await w.load(ll);
        bool hit = false;
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (active[l] && j < st.g.degree(v)) {
                const VertexId t = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                if (st.level[t] == lv + 1) {
                    kutil::addElem(sl, st.sigma, t, st.lb);
                    kutil::addElem(sl, st.delta, t, st.lb);
                    hit = true;
                }
            }
        }
        if (hit) {
            co_await w.load(sl);
            for (std::uint32_t l = 0; l < lanes; ++l) {
                const VertexId v = v0 + l;
                if (active[l] && j < st.g.degree(v)) {
                    const VertexId t =
                        st.g.edgeTarget(st.g.edgeBegin(v) + j);
                    if (st.level[t] == lv + 1 && st.sigma[t] > 0.0)
                        acc[l] += (1.0 + st.delta[t]) / st.sigma[t];
                }
            }
            co_await w.compute(1);
        }
    }
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (active[l]) {
            st.delta[v] = st.sigma[v] * acc[l];
            kutil::addElem(wr, st.delta, v, st.lb);
        }
    }
    co_await w.store(wr);
}

} // namespace

RunResult
runBc(const CsrGraph& g, const SystemConfig& cfg, const SimParams& params,
      AppOutputs* out)
{
    GGA_ASSERT(cfg.prop != UpdateProp::PushPull,
               "BC has a static traversal: use Push or Pull");
    Gpu gpu(params, cfg.coh, cfg.con);
    BcState st(gpu, g);
    const VertexId n = g.numVertices();
    const bool push = cfg.prop == UpdateProp::Push;

    gpu.launch("bc.init", n, [&st](Warp& w) { return bcInit(w, st); });
    gpu.launch("bc.seed", 1, [&st](Warp& w) { return bcSeed(w, st); });

    // Forward BFS.
    std::uint32_t max_level = 0;
    for (st.curLevel = 0; st.curLevel < kMaxSweeps; ++st.curLevel) {
        if (push)
            gpu.launch("bc.fwd.push", n,
                       [&st](Warp& w) { return bcFwdPush(w, st); });
        else
            gpu.launch("bc.fwd.pull", n,
                       [&st](Warp& w) { return bcFwdPull(w, st); });
        bool frontier = false;
        for (VertexId v = 0; v < n && !frontier; ++v)
            frontier = st.level[v] == st.curLevel + 1;
        if (!frontier) {
            max_level = st.curLevel;
            break;
        }
    }

    // Backward dependency accumulation.
    for (std::uint32_t lv = max_level; lv-- > 0;) {
        st.curLevel = lv;
        if (push) {
            gpu.launch("bc.bwd.push", n,
                       [&st](Warp& w) { return bcBwdPush(w, st); });
            gpu.launch("bc.bwd.fin", n,
                       [&st](Warp& w) { return bcBwdFinalize(w, st); });
        } else {
            gpu.launch("bc.bwd.pull", n,
                       [&st](Warp& w) { return bcBwdPull(w, st); });
        }
    }

    if (out) {
        if (out->bcDelta)
            *out->bcDelta = st.delta.host();
        if (out->bcLevel)
            *out->bcLevel = st.level.host();
        if (out->bcSigma)
            *out->bcSigma = st.sigma.host();
    }
    return collectResult(gpu);
}


namespace {

/** Adapter from the legacy sink signature to the typed AppOutput. */
RunResult
runBcTyped(const CsrGraph& g, const SystemConfig& cfg,
           const SimParams& params, std::uint64_t seed, AppOutput* out)
{
    (void)seed; // BC's source is fixed; no stochastic choices
    if (!out)
        return runBc(g, cfg, params, nullptr);
    BcOutput typed;
    AppOutputs sinks;
    sinks.bcDelta = &typed.delta;
    sinks.bcLevel = &typed.level;
    sinks.bcSigma = &typed.sigma;
    const RunResult r = runBc(g, cfg, params, &sinks);
    *out = std::move(typed);
    return r;
}

} // namespace

void
registerBcApp(AppRegistry& reg)
{
    AppRegistry::Entry e;
    e.id = AppId::Bc;
    e.name = appName(AppId::Bc);
    e.properties = algoProperties(AppId::Bc);
    e.params = SimParams{}; // paper Table IV hardware point
    e.configRequirement = "has a static traversal and requires Push or Pull";
    e.run = &runBcTyped;
    e.runLegacy = &runBc;
    e.validConfig = [](const SystemConfig& cfg) {
        return cfg.prop != UpdateProp::PushPull;
    };
    reg.add(std::move(e));
}

} // namespace gga
