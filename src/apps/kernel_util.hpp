/**
 * @file
 * Helpers for writing warp-level SIMT kernels: coalesced/gather address
 * set construction and warp-tile degree scans.
 */

#ifndef GGA_APPS_KERNEL_UTIL_HPP
#define GGA_APPS_KERNEL_UTIL_HPP

#include <cstdint>

#include "graph/csr.hpp"
#include "sim/address_space.hpp"
#include "sim/warp.hpp"

namespace gga::kutil {

/** Line address containing byte address @p a. */
inline Addr
lineOf(Addr a, std::uint32_t line_bytes)
{
    return a & ~static_cast<Addr>(line_bytes - 1);
}

/** Add the (deduplicated) line of element @p idx of @p buf. */
template <typename T>
void
addElem(AddrSet& s, const DeviceBuffer<T>& buf, std::size_t idx,
        std::uint32_t line_bytes)
{
    s.pushUnique(lineOf(buf.addrOf(idx), line_bytes));
}

/** Add the lines of the contiguous range [first, first+count) of @p buf. */
template <typename T>
void
addRange(AddrSet& s, const DeviceBuffer<T>& buf, std::size_t first,
         std::size_t count, std::uint32_t line_bytes)
{
    if (count == 0)
        return;
    const Addr lo = lineOf(buf.addrOf(first), line_bytes);
    const Addr hi = lineOf(buf.addrOf(first + count - 1), line_bytes);
    for (Addr line = lo; line <= hi; line += line_bytes)
        s.pushUnique(line);
}

/** Word address of element @p idx (atomic granularity). */
template <typename T>
Addr
wordOf(const DeviceBuffer<T>& buf, std::size_t idx)
{
    return buf.addrOf(idx);
}

/** Max degree over the warp's lanes [v0, v0+lanes). */
inline std::uint32_t
maxDegree(const CsrGraph& g, VertexId v0, std::uint32_t lanes)
{
    std::uint32_t m = 0;
    for (std::uint32_t l = 0; l < lanes; ++l)
        m = std::max(m, g.degree(v0 + l));
    return m;
}

} // namespace gga::kutil

#endif // GGA_APPS_KERNEL_UTIL_HPP
