#include "apps/runner.hpp"

#include "api/registry.hpp"
#include "support/log.hpp"

namespace gga {

RunResult
runWorkload(AppId app, const CsrGraph& g, const SystemConfig& cfg,
            const SimParams& params, AppOutputs* out)
{
    const AppRegistry::Entry& entry = AppRegistry::instance().at(app);
    if (!entry.validConfig(cfg))
        GGA_FATAL(entry.name, " ", entry.configRequirement, ", got ",
                  cfg.name());
    return entry.runLegacy(g, cfg, params, out);
}

} // namespace gga
