#include "apps/runner.hpp"

#include "support/log.hpp"

namespace gga {

RunResult
runWorkload(AppId app, const CsrGraph& g, const SystemConfig& cfg,
            const SimParams& params, AppOutputs* out)
{
    const AlgoProperties& props = algoProperties(app);
    if (props.traversal == TraversalKind::Dynamic) {
        GGA_ASSERT(cfg.prop == UpdateProp::PushPull,
                   appName(app), " requires a PushPull configuration, got ",
                   cfg.name());
    } else {
        GGA_ASSERT(cfg.prop != UpdateProp::PushPull,
                   appName(app), " requires Push or Pull, got ", cfg.name());
    }
    switch (app) {
      case AppId::Pr:
        return runPr(g, cfg, params, out);
      case AppId::Sssp:
        return runSssp(g, cfg, params, out);
      case AppId::Mis:
        return runMis(g, cfg, params, out);
      case AppId::Clr:
        return runClr(g, cfg, params, out);
      case AppId::Bc:
        return runBc(g, cfg, params, out);
      case AppId::Cc:
        return runCc(g, cfg, params, out);
    }
    GGA_PANIC("unknown application");
}

} // namespace gga
