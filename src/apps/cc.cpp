/**
 * @file
 * Connected components (paper: CC), adapted from the ECL-CC style of
 * Jaiganesh & Burtscher (HPDC'18): dynamic traversal with racy reads and
 * updates — the push+pull design point.
 *
 * Hook: for every edge (v, u) with u > v, chase both endpoints to their
 * roots (racy atomic loads whose values feed control flow) and link the
 * higher root under the lower (CAS). Compress: pointer-jump every vertex
 * to its root. Rounds repeat until no hook succeeds.
 *
 * The value-carrying atomics are why DRFrlx buys little here (Sec. IV-A4):
 * the warp must wait for each returned value regardless of relaxation.
 */

#include "apps/runner.hpp"

#include "api/registry.hpp"
#include "apps/kernel_util.hpp"
#include "support/log.hpp"

namespace gga {

namespace {

struct CcState
{
    CcState(Gpu& gpu, const CsrGraph& graph)
        : g(graph),
          gb(gpu.mem(), graph),
          parent(gpu.mem(), graph.numVertices(), "cc.parent"),
          lb(gpu.params().lineBytes)
    {
    }

    const CsrGraph& g;
    GraphBuffers gb;
    DeviceBuffer<std::uint32_t> parent;
    std::uint32_t lb;
    bool changed = false;
};

WarpTask
ccInit(Warp& w, CcState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    for (std::uint32_t l = 0; l < lanes; ++l)
        st.parent[v0 + l] = v0 + l;
    AddrSet wr;
    kutil::addRange(wr, st.parent, v0, lanes, st.lb);
    co_await w.store(wr);
}

WarpTask
ccHook(Warp& w, CcState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    AddrSet rd;
    kutil::addRange(rd, st.gb.rowOff, v0, lanes + 1, st.lb);
    co_await w.load(rd);

    // Lock-step root chase of each lane's own vertex: racy atomic loads,
    // values needed for control flow.
    VertexId rv[32];
    for (std::uint32_t l = 0; l < lanes; ++l)
        rv[l] = v0 + l;
    AddrSet words;
    while (true) {
        words.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            if (st.parent[rv[l]] != rv[l])
                words.pushUnique(kutil::wordOf(st.parent, rv[l]));
        }
        if (words.empty())
            break;
        co_await w.atomic(words, /*needs_value=*/true);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            if (st.parent[rv[l]] != rv[l])
                rv[l] = st.parent[rv[l]];
        }
    }

    const std::uint32_t maxd = kutil::maxDegree(st.g, v0, lanes);
    AddrSet el;
    for (std::uint32_t j = 0; j < maxd; ++j) {
        el.clear();
        VertexId ru[32];
        bool work[32] = {};
        for (std::uint32_t l = 0; l < lanes; ++l) {
            const VertexId v = v0 + l;
            if (j < st.g.degree(v)) {
                const VertexId u = st.g.edgeTarget(st.g.edgeBegin(v) + j);
                if (u > v) { // each undirected pair processed once
                    ru[l] = u;
                    work[l] = true;
                    kutil::addElem(el, st.gb.col, st.g.edgeBegin(v) + j,
                                   st.lb);
                }
            }
        }
        if (el.empty())
            continue;
        co_await w.load(el);

        // Lock-step chase of the neighbors' roots.
        while (true) {
            words.clear();
            for (std::uint32_t l = 0; l < lanes; ++l) {
                if (work[l] && st.parent[ru[l]] != ru[l])
                    words.pushUnique(kutil::wordOf(st.parent, ru[l]));
            }
            if (words.empty())
                break;
            co_await w.atomic(words, /*needs_value=*/true);
            for (std::uint32_t l = 0; l < lanes; ++l) {
                if (work[l] && st.parent[ru[l]] != ru[l])
                    ru[l] = st.parent[ru[l]];
            }
        }

        // Union: CAS the higher root under the lower.
        words.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            if (!work[l] || rv[l] == ru[l])
                continue;
            const VertexId hi = std::max(rv[l], ru[l]);
            const VertexId lo = std::min(rv[l], ru[l]);
            words.pushUnique(kutil::wordOf(st.parent, hi));
            if (st.parent[hi] == hi) {
                st.parent[hi] = lo; // CAS success
                st.changed = true;
            }
            // On failure another thread merged hi; the next round
            // re-processes this edge with fresher roots.
            rv[l] = std::min(rv[l], lo);
        }
        if (!words.empty())
            co_await w.atomic(words, /*needs_value=*/true);
    }
}

WarpTask
ccCompress(Warp& w, CcState& st)
{
    const VertexId v0 = w.firstThread();
    const std::uint32_t lanes = w.laneCount();
    VertexId r[32];
    for (std::uint32_t l = 0; l < lanes; ++l)
        r[l] = v0 + l;
    AddrSet words;
    while (true) {
        words.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            if (st.parent[r[l]] != r[l])
                words.pushUnique(kutil::wordOf(st.parent, r[l]));
        }
        if (words.empty())
            break;
        co_await w.atomic(words, /*needs_value=*/true);
        for (std::uint32_t l = 0; l < lanes; ++l) {
            if (st.parent[r[l]] != r[l])
                r[l] = st.parent[r[l]];
        }
    }
    AddrSet wr;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const VertexId v = v0 + l;
        if (st.parent[v] != r[l]) {
            st.parent[v] = r[l];
            kutil::addElem(wr, st.parent, v, st.lb);
        }
    }
    if (!wr.empty())
        co_await w.store(wr);
}

} // namespace

RunResult
runCc(const CsrGraph& g, const SystemConfig& cfg, const SimParams& params,
      AppOutputs* out)
{
    GGA_ASSERT(cfg.prop == UpdateProp::PushPull,
               "CC has a dynamic traversal: configuration must be PushPull");
    Gpu gpu(params, cfg.coh, cfg.con);
    CcState st(gpu, g);
    const VertexId n = g.numVertices();

    gpu.launch("cc.init", n, [&st](Warp& w) { return ccInit(w, st); });
    for (std::uint32_t round = 0; round < kMaxSweeps; ++round) {
        st.changed = false;
        gpu.launch("cc.hook", n, [&st](Warp& w) { return ccHook(w, st); });
        gpu.launch("cc.compress", n,
                   [&st](Warp& w) { return ccCompress(w, st); });
        if (!st.changed)
            break;
    }

    if (out && out->ccLabels)
        *out->ccLabels = st.parent.host();
    return collectResult(gpu);
}


namespace {

/** Adapter from the legacy sink signature to the typed AppOutput. */
RunResult
runCcTyped(const CsrGraph& g, const SystemConfig& cfg,
           const SimParams& params, std::uint64_t seed, AppOutput* out)
{
    (void)seed; // CC has no stochastic choices
    if (!out)
        return runCc(g, cfg, params, nullptr);
    CcOutput typed;
    AppOutputs sinks;
    sinks.ccLabels = &typed.labels;
    const RunResult r = runCc(g, cfg, params, &sinks);
    *out = std::move(typed);
    return r;
}

} // namespace

void
registerCcApp(AppRegistry& reg)
{
    AppRegistry::Entry e;
    e.id = AppId::Cc;
    e.name = appName(AppId::Cc);
    e.properties = algoProperties(AppId::Cc);
    e.params = SimParams{}; // paper Table IV hardware point
    e.configRequirement = "has a dynamic traversal and requires PushPull";
    e.run = &runCcTyped;
    e.runLegacy = &runCc;
    e.validConfig = [](const SystemConfig& cfg) {
        return cfg.prop == UpdateProp::PushPull;
    };
    reg.add(std::move(e));
}

} // namespace gga
