/**
 * @file
 * Reproduces the paper's Table I: the implementation design space and its
 * salient features, as encoded in the model library's metadata.
 *
 * Usage: table1_design_space [--csv]
 */

#include <cstring>
#include <iostream>

#include "model/config.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");

    gga::TextTable table;
    table.setHeader({"Dimension", "Implementation", "Salient features"});
    table.addRow({"Push vs. Pull", gga::propLabel(gga::UpdateProp::Pull),
                  "target outer loop; dense local updates; sparse remote "
                  "reads; elides work at sources"});
    table.addRow({"", gga::propLabel(gga::UpdateProp::Push),
                  "source outer loop; dense local reads; sparse remote "
                  "atomics; elides work at targets"});
    table.addRow({"", gga::propLabel(gga::UpdateProp::PushPull),
                  "non-deterministic direction; remote reads and updates"});
    table.addSeparator();
    table.addRow({"Coherence", gga::cohLabel(gga::CoherenceKind::Gpu),
                  "write-through + self-invalidation at syncs; atomics at "
                  "L2; good when update reuse is low"});
    table.addRow({"", gga::cohLabel(gga::CoherenceKind::DeNovo),
                  "ownership registration at L1; atomics at L1; good when "
                  "update reuse is high"});
    table.addSeparator();
    table.addRow({"Consistency", gga::conLabel(gga::ConsistencyKind::Drf0),
                  "data-data reordering only; SC for paired syncs; best "
                  "programmability"});
    table.addRow({"", gga::conLabel(gga::ConsistencyKind::Drf1),
                  "unpaired atomics overlap data accesses; atomics stay "
                  "mutually ordered"});
    table.addRow({"", gga::conLabel(gga::ConsistencyKind::DrfRlx),
                  "relaxed atomics overlap each other; MLP mitigates "
                  "imbalance"});

    std::cout << "Table I: implementation design space summary\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    return 0;
}
