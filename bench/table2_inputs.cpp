/**
 * @file
 * Reproduces the paper's Table II: input graph statistics and taxonomy
 * classifications for the six inputs, side by side with the published
 * values.
 *
 * Usage: table2_inputs [--csv]
 */

#include <cstring>
#include <iostream>

#include "api/graph_store.hpp"
#include "graph/degree_stats.hpp"
#include "graph/presets.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "taxonomy/profile.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
    gga::setVerbose(false);

    gga::TextTable table;
    table.setHeader({"Graph", "Vertices", "Edges", "MaxDeg", "AvgDeg",
                     "StdDev", "Volume(KB)", "ANL", "ANR", "Reuse",
                     "Imbalance", "Classes", "PaperClasses"});

    bool all_match = true;
    for (gga::GraphPreset p : gga::kAllGraphPresets) {
        // Full-size inputs through the thread-safe GraphStore.
        const auto graph = gga::GraphStore::instance().get(p);
        const gga::CsrGraph& g = *graph;
        const gga::DegreeStats ds = gga::computeDegreeStats(g);
        const gga::TaxonomyProfile prof = gga::profileGraph(g);
        const gga::PaperGraphStats& paper = gga::paperStats(p);

        const std::string classes = {gga::levelChar(prof.volume), '/',
                                     gga::levelChar(prof.reuseLevel), '/',
                                     gga::levelChar(prof.imbalanceLevel)};
        const std::string paper_classes = {paper.volumeClass, '/',
                                           paper.reuseClass, '/',
                                           paper.imbalanceClass};
        if (classes != paper_classes)
            all_match = false;

        table.addRow({gga::presetName(p), std::to_string(g.numVertices()),
                      std::to_string(g.numEdges()),
                      std::to_string(ds.maxDegree),
                      gga::fmtDouble(ds.avgDegree, 3),
                      gga::fmtDouble(ds.stddevDegree, 3),
                      gga::fmtDouble(prof.volumeKb, 3),
                      gga::fmtDouble(prof.anl, 3),
                      gga::fmtDouble(prof.anr, 3),
                      gga::fmtDouble(prof.reuse, 3),
                      gga::fmtDouble(prof.imbalance, 3), classes,
                      paper_classes});
    }

    std::cout << "Table II: input graph statistics and taxonomy classes\n";
    std::cout << "(classes are Volume/Reuse/Imbalance; paper values from "
                 "Salvador et al., ISPASS 2020)\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    std::cout << (all_match ? "\nAll taxonomy classes match the paper.\n"
                            : "\nWARNING: some classes differ from the "
                              "paper.\n");
    return all_match ? 0 : 1;
}
