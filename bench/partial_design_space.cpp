/**
 * @file
 * Reproduces the paper's partial-design-space analysis (Secs. IV-B, VI
 * "inter-dependent design dimensions"): when the hardware does not support
 * DRFrlx, which workloads flip from push to pull, and how well the
 * restricted model predicts the restricted-space best.
 *
 * The paper reports seven workloads that would flip to pull without
 * DRFrlx, with the partial model predicting four of the seven correctly,
 * and highlights MIS-RAJ: push under DRF1-only can run far worse than
 * pull (up to 80%).
 *
 * Both sweeps of every workload (full space and restricted) are submitted
 * to one shared Session executor up front, then gathered in paper order.
 *
 * Usage: partial_design_space [--csv]
 * Environment: GGA_SCALE in (0,1] scales the inputs down for quick runs;
 * GGA_SESSION_THREADS > 1 widens the executor (GGA_SWEEP_THREADS is the
 * deprecated alias).
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <vector>

#include "api/graph_store.hpp"
#include "harness/sweep.hpp"
#include "harness/workloads.hpp"
#include "model/partial_tree.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(true);

    // Restricted space: no DRFrlx anywhere.
    const std::vector<gga::SystemConfig> static_cfgs = {
        gga::parseConfig("TG0"), gga::parseConfig("SG1"),
        gga::parseConfig("SD1")};
    const std::vector<gga::SystemConfig> dyn_cfgs = {
        gga::parseConfig("DG1"), gga::parseConfig("DD1")};

    gga::DesignSpaceRestriction restriction;
    restriction.allowDrfRlx = false;

    gga::SessionOptions session_opts;
    session_opts.scale = gga::evaluationScale(); // sweeps honor GGA_SCALE
    session_opts.verboseRuns = true;
    gga::Session session(session_opts);

    // Phase 1: both sweeps of every workload onto the shared executor.
    struct Job
    {
        gga::PendingSweep full;
        gga::PendingSweep part;
    };
    std::vector<Job> jobs;
    for (const gga::Workload& wl : gga::allWorkloads()) {
        const auto cfgs = wl.dynamic() ? dyn_cfgs : static_cfgs;
        jobs.push_back(
            {gga::submitSweep(session, wl,
                              gga::figureConfigs(wl.dynamic())),
             gga::submitSweep(session, wl, cfgs)});
    }

    gga::TextTable table;
    table.setHeader({"Workload", "FullBest", "NoRlxBest", "PartialPred",
                     "PredHit", "Flip", "SG1/TG0"});

    std::uint32_t flips = 0;
    std::uint32_t pred_hits = 0;
    std::uint32_t rows = 0;
    for (Job& job : jobs) {
        const gga::Workload wl = job.full.workload();
        // Full-space sweep for reference best.
        const gga::SweepResult full = job.full.collect();
        // Restricted sweep.
        const gga::SweepResult part = job.part.collect();
        gga::SystemConfig no_rlx_best = part.results.front().config;
        gga::Cycles best_cycles = part.results.front().run.cycles;
        for (const gga::ConfigResult& r : part.results) {
            // Only consider configurations in the restricted space.
            if (r.config.con == gga::ConsistencyKind::DrfRlx)
                continue;
            if (r.run.cycles < best_cycles ||
                no_rlx_best.con == gga::ConsistencyKind::DrfRlx) {
                best_cycles = r.run.cycles;
                no_rlx_best = r.config;
            }
        }

        gga::GpuGeometry geom;
        const gga::TaxonomyProfile profile = gga::profileGraph(
            *gga::GraphStore::instance().get(wl.graph,
                                             session.options().scale),
            geom);
        const gga::SystemConfig pred = gga::predictPartialDesignSpace(
            profile, gga::algoProperties(wl.app), restriction);

        const bool full_best_push =
            full.best.prop == gga::UpdateProp::Push;
        const bool flip = full_best_push &&
                          no_rlx_best.prop == gga::UpdateProp::Pull;
        flips += flip;
        const bool hit = pred == no_rlx_best;
        pred_hits += hit;
        ++rows;

        std::string ratio = "-";
        if (!wl.dynamic()) {
            const gga::ConfigResult* sg1 =
                part.find(gga::parseConfig("SG1"));
            const gga::ConfigResult* tg0 =
                part.find(gga::parseConfig("TG0"));
            ratio = gga::fmtDouble(
                double(sg1->run.cycles) / double(tg0->run.cycles), 2);
        }
        table.addRow({wl.name(), full.best.name(), no_rlx_best.name(),
                      pred.name(), hit ? "yes" : "no",
                      flip ? "PULL-FLIP" : "", ratio});
    }

    std::cout << "Partial design space (no DRFrlx): best configuration "
                 "and partial-model prediction\n(scale="
              << session.options().scale
              << ", session threads=" << session.threads()
              << ")\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    std::cout << "\nPush-to-pull flips without DRFrlx: " << flips
              << " (paper: 7). Partial-model hits: " << pred_hits << "/"
              << rows << "\n";
    return 0;
}
