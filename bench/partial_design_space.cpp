/**
 * @file
 * Reproduces the paper's partial-design-space analysis (Secs. IV-B, VI
 * "inter-dependent design dimensions"): when the hardware does not support
 * DRFrlx, which workloads flip from push to pull, and how well the
 * restricted model predicts the restricted-space best.
 *
 * The paper reports seven workloads that would flip to pull without
 * DRFrlx, with the partial model predicting four of the seven correctly,
 * and highlights MIS-RAJ: push under DRF1-only can run far worse than
 * pull (up to 80%).
 *
 * Both sweeps of every workload (full space and restricted) live in one
 * deduplicated work-unit manifest (the configurations they share are
 * simulated once), executed on the in-process Session executor via
 * runManifest — the same units and renderer the gga_worker/gga_merge
 * sharded pipeline uses.
 *
 * Usage: partial_design_space [--csv]
 * Environment: GGA_SCALE in (0,1] scales the inputs down for quick runs;
 * GGA_SESSION_THREADS > 1 widens the executor (GGA_SWEEP_THREADS is the
 * deprecated alias).
 */

#include <cstring>
#include <iostream>

#include "eval/run.hpp"
#include "harness/figures.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(true);

    gga::SessionOptions session_opts;
    session_opts.scale = gga::evaluationScale(); // sweeps honor GGA_SCALE
    session_opts.verboseRuns = true;
    gga::Session session(session_opts);

    const gga::FigureSet set =
        gga::figureSet("partial", session.options().scale);
    const gga::ResultSet results = gga::runManifest(session, set.manifest);

    std::cout << "Partial design space (no DRFrlx): best configuration "
                 "and partial-model prediction\n(scale="
              << session.options().scale
              << ", session threads=" << session.threads()
              << ")\n\n";
    std::cout << gga::renderFigure(set, results, csv);
    return 0;
}
