/**
 * @file
 * Ablation: the DRFrlx relaxed-atomic window (intra-thread atomic MLP).
 *
 * The paper argues DRFrlx wins on imbalanced inputs because long-running
 * warps can overlap their atomics (Sec. IV-A3). Sweeping the window from
 * 1 (equivalent to DRF1 ordering) to 64 shows where the MLP benefit
 * saturates, on an imbalanced (RAJ) and a balanced (OLS) input.
 *
 * The hardware points are enumerated as a work-unit manifest
 * (Manifest::sweepParams) and executed on the session executor — every
 * point in flight at once instead of a serial run() loop.
 *
 * Usage: ablation_mlp_window [--csv]
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "eval/run.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(true);

    gga::SessionOptions opts;
    opts.scale = gga::evaluationScale();
    gga::Session session(opts);

    const std::vector<std::uint32_t> windows = {1, 2, 4, 8, 16, 32, 64};

    gga::Manifest manifest;
    struct Group
    {
        gga::GraphPreset graph;
        const char* config;
        std::vector<std::string> keys;
    };
    std::vector<Group> groups;
    for (gga::GraphPreset g : {gga::GraphPreset::Raj, gga::GraphPreset::Ols}) {
        for (const char* cfg_name : {"SGR", "SDR"}) {
            std::vector<gga::SimParams> points;
            for (std::uint32_t window : windows) {
                gga::SimParams params;
                params.relaxedAtomicWindow = window;
                points.push_back(params);
            }
            groups.push_back(
                {g, cfg_name,
                 manifest.sweepParams(gga::AppId::Mis, g,
                                      gga::parseConfig(cfg_name), points,
                                      opts.scale)});
        }
    }

    const gga::ResultSet results = gga::runManifest(session, manifest);

    gga::TextTable table;
    table.setHeader({"Workload", "Config", "Window", "Cycles", "Norm"});
    for (const Group& group : groups) {
        double base = 0.0;
        for (std::size_t i = 0; i < group.keys.size(); ++i) {
            const gga::RunResult& r = results.at(group.keys[i]).run;
            if (base == 0.0)
                base = static_cast<double>(r.cycles);
            table.addRow({"MIS-" + gga::presetName(group.graph),
                          group.config, std::to_string(windows[i]),
                          std::to_string(r.cycles),
                          gga::fmtDouble(r.cycles / base, 3)});
        }
        table.addSeparator();
    }

    std::cout << "Ablation: relaxed-atomic window size (atomic MLP)\n"
                 "(normalized to window=1, which behaves like DRF1)\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    return 0;
}
