/**
 * @file
 * Ablation: the DRFrlx relaxed-atomic window (intra-thread atomic MLP).
 *
 * The paper argues DRFrlx wins on imbalanced inputs because long-running
 * warps can overlap their atomics (Sec. IV-A3). Sweeping the window from
 * 1 (equivalent to DRF1 ordering) to 64 shows where the MLP benefit
 * saturates, on an imbalanced (RAJ) and a balanced (OLS) input.
 *
 * Usage: ablation_mlp_window [--csv]
 */

#include <cstring>
#include <iostream>

#include "api/session.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(true);

    gga::SessionOptions opts;
    opts.scale = gga::evaluationScale();
    opts.collectOutputs = false; // timing only
    gga::Session session(opts);

    gga::TextTable table;
    table.setHeader({"Workload", "Config", "Window", "Cycles", "Norm"});

    for (gga::GraphPreset g : {gga::GraphPreset::Raj, gga::GraphPreset::Ols}) {
        for (const char* cfg_name : {"SGR", "SDR"}) {
            double base = 0.0;
            for (std::uint32_t window : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
                gga::SimParams params;
                params.relaxedAtomicWindow = window;
                const gga::RunResult r = session.run(gga::RunPlan{}
                                                         .app(gga::AppId::Mis)
                                                         .graph(g)
                                                         .config(cfg_name)
                                                         .params(params))
                                             .result;
                if (base == 0.0)
                    base = static_cast<double>(r.cycles);
                table.addRow({"MIS-" + gga::presetName(g), cfg_name,
                              std::to_string(window),
                              std::to_string(r.cycles),
                              gga::fmtDouble(r.cycles / base, 3)});
            }
            table.addSeparator();
        }
    }

    std::cout << "Ablation: relaxed-atomic window size (atomic MLP)\n"
                 "(normalized to window=1, which behaves like DRF1)\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    return 0;
}
