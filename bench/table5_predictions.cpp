/**
 * @file
 * Reproduces the paper's Table V: the configuration the specialization
 * model predicts for each of the 36 workloads, compared against the
 * paper's published predictions.
 *
 * This exercises the whole model path (generated graph -> taxonomy
 * metrics -> Fig. 4 decision tree) without running the simulator.
 *
 * Usage: table5_predictions [--csv]
 */

#include <cstring>
#include <iostream>

#include "api/graph_store.hpp"
#include "model/decision_tree.hpp"
#include "taxonomy/profile.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

/** The paper's Table V entries, rows = inputs, columns = apps. */
const char* const kPaperTable5[6][6] = {
    // PR     SSSP   MIS    CLR    BC     CC
    {"SGR", "SGR", "SGR", "SGR", "SGR", "DD1"}, // AMZ
    {"SGR", "SGR", "SGR", "SGR", "SGR", "DD1"}, // DCT
    {"SGR", "SGR", "SGR", "SGR", "SGR", "DD1"}, // EML
    {"SDR", "SDR", "TG0", "TG0", "SDR", "DD1"}, // OLS
    {"SDR", "SDR", "SDR", "SDR", "SDR", "DD1"}, // RAJ
    {"SGR", "SGR", "SGR", "SGR", "SGR", "DD1"}, // WNG
};

} // namespace

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(false);

    gga::TextTable table;
    table.setHeader({"Input", "PR", "SSSP", "MIS", "CLR", "BC", "CC",
                     "MatchesPaper"});

    std::uint32_t matches = 0;
    for (std::size_t gi = 0; gi < gga::kAllGraphPresets.size(); ++gi) {
        const gga::GraphPreset g = gga::kAllGraphPresets[gi];
        std::vector<std::string> cells{gga::presetName(g)};
        bool row_match = true;
        for (std::size_t ai = 0; ai < gga::kAllApps.size(); ++ai) {
            // Always full-scale: predictions profile the graph only.
            const gga::TaxonomyProfile profile =
                gga::profileGraph(*gga::GraphStore::instance().get(g));
            const std::string pred =
                gga::predictFullDesignSpace(
                    profile, gga::algoProperties(gga::kAllApps[ai]))
                    .name();
            cells.push_back(pred);
            const bool ok = pred == kPaperTable5[gi][ai];
            row_match &= ok;
            matches += ok;
        }
        cells.push_back(row_match ? "yes" : "NO");
        table.addRow(std::move(cells));
    }

    std::cout << "Table V: model-predicted best configuration per "
                 "workload\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    std::cout << "\nPredictions matching the paper's Table V: " << matches
              << "/36\n";
    return matches == 36 ? 0 : 1;
}
