/**
 * @file
 * Reproduces the paper's Table III: the algorithmic properties (traversal,
 * control, information) of the six applications, as self-registered by
 * each app in the AppRegistry, plus the size of each app's valid
 * configuration space under the registry's config predicate.
 *
 * Usage: table3_algo_props [--csv]
 */

#include <cstring>
#include <iostream>

#include "api/registry.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");

    // All 18 raw design points; the registry predicate selects each
    // app's valid subset (12 static / 6 dynamic).
    std::vector<gga::SystemConfig> candidates = gga::allConfigs(false);
    for (const gga::SystemConfig& c : gga::allConfigs(true))
        candidates.push_back(c);

    const gga::AppRegistry& reg = gga::AppRegistry::instance();
    gga::TextTable table;
    table.setHeader({"App", "Traversal", "Control", "Information",
                     "ValidConfigs"});
    for (const gga::AppRegistry::Entry& e : reg.entries()) {
        const gga::AlgoProperties& p = e.properties;
        table.addRow({e.name, gga::traversalLabel(p.traversal),
                      gga::preferenceLabel(p.control),
                      gga::preferenceLabel(p.information),
                      std::to_string(
                          reg.validConfigs(e.id, candidates).size())});
    }
    std::cout << "Table III: algorithmic properties per application\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    return 0;
}
