/**
 * @file
 * Reproduces the paper's Table III: the algorithmic properties (traversal,
 * control, information) of the six applications, as encoded in the model
 * library.
 *
 * Usage: table3_algo_props [--csv]
 */

#include <cstring>
#include <iostream>

#include "model/algo_props.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");

    gga::TextTable table;
    table.setHeader({"App", "Traversal", "Control", "Information"});
    for (gga::AppId app : gga::kAllApps) {
        const gga::AlgoProperties& p = gga::algoProperties(app);
        table.addRow({gga::appName(app), gga::traversalLabel(p.traversal),
                      gga::preferenceLabel(p.control),
                      gga::preferenceLabel(p.information)});
    }
    std::cout << "Table III: algorithmic properties per application\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    return 0;
}
