/**
 * @file
 * Reproduces the paper's Table IV: simulated system parameters, including
 * the derived latency ranges (L2 hit, remote L1, memory) produced by the
 * mesh/bank/DRAM models.
 *
 * Usage: table4_system [--csv]
 */

#include <cstring>
#include <iostream>

#include "sim/dram.hpp"
#include "sim/noc.hpp"
#include "sim/params.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    const gga::SimParams p;
    const gga::MeshNoc noc(p);

    // Derived latency ranges over all SM/bank placements.
    gga::Cycles l2_min = ~0ull, l2_max = 0;
    gga::Cycles rl1_min = ~0ull, rl1_max = 0;
    for (std::uint32_t sm = 0; sm < p.numSms; ++sm) {
        for (std::uint32_t bank = 0; bank < p.l2Banks; ++bank) {
            const gga::Cycles l2 = noc.latency(sm, bank) +
                                   p.l2BankLatency + noc.latency(bank, sm);
            l2_min = std::min(l2_min, l2);
            l2_max = std::max(l2_max, l2);
            for (std::uint32_t owner = 0; owner < p.numSms; ++owner) {
                if (owner == sm)
                    continue;
                const gga::Cycles fwd =
                    noc.latency(sm, bank) + p.l2BankLatency +
                    noc.latency(bank, owner) + p.l1HitLatency +
                    noc.latency(owner, sm);
                rl1_min = std::min(rl1_min, fwd);
                rl1_max = std::max(rl1_max, fwd);
            }
        }
    }
    const gga::Cycles mem_min = l2_min + p.dramLatency;
    const gga::Cycles mem_max = l2_max + p.dramLatency;

    auto range = [](gga::Cycles lo, gga::Cycles hi) {
        return std::to_string(lo) + "-" + std::to_string(hi) + " cycles";
    };

    gga::TextTable table;
    table.setHeader({"Parameter", "Value", "Paper"});
    table.addRow({"GPU CUs (SMs)", std::to_string(p.numSms), "15"});
    table.addRow({"L1 size", std::to_string(p.l1SizeKiB) + " KB, " +
                                 std::to_string(p.l1Assoc) + "-way",
                  "32 KB, 8-way"});
    table.addRow({"L2 size", std::to_string(p.l2SizeKiB / 1024) + " MB, " +
                                 std::to_string(p.l2Banks) +
                                 " banks (NUCA)",
                  "4 MB, 16 banks"});
    table.addRow({"Store buffer", std::to_string(p.storeBufferEntries) +
                                      " entries",
                  "128 entries"});
    table.addRow({"L1 MSHRs", std::to_string(p.l1Mshrs) + " entries",
                  "128 entries"});
    table.addRow({"L1 hit latency", std::to_string(p.l1HitLatency) +
                                        " cycle",
                  "1 cycle"});
    table.addRow({"Remote L1 hit latency", range(rl1_min, rl1_max),
                  "35-83 cycles"});
    table.addRow({"L2 hit latency", range(l2_min, l2_max), "29-61 cycles"});
    table.addRow({"Memory latency", range(mem_min, mem_max),
                  "197-261 cycles"});

    std::cout << "Table IV: simulated heterogeneous system parameters\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    return 0;
}
