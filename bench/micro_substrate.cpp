/**
 * @file
 * google-benchmark micro-benchmarks of the substrate components: event
 * engine throughput, cache lookups, k-means, graph generation, taxonomy
 * metrics, and small end-to-end simulations. These track the simulator's
 * own performance (host wall-time), not simulated cycles.
 */

#include <benchmark/benchmark.h>

#include "api/session.hpp"
#include "graph/generator.hpp"
#include "model/config.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "taxonomy/kmeans.hpp"
#include "taxonomy/profile.hpp"

namespace {

const gga::CsrGraph&
benchGraph()
{
    static const gga::CsrGraph g = [] {
        gga::GenSpec spec;
        spec.name = "bench";
        spec.numVertices = 4096;
        spec.numDirectedEdges = 32768;
        spec.dist = gga::DegreeDist::PowerLaw;
        spec.p1 = 2.3;
        spec.p2 = 2.0;
        spec.maxDegree = 256;
        spec.fracIntraBlock = 0.4;
        spec.seed = 7;
        return gga::generateGraph(spec);
    }();
    return g;
}

void
BM_EngineScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        gga::Engine engine;
        std::uint64_t count = 0;
        for (int i = 0; i < 4096; ++i) {
            engine.schedule(static_cast<gga::Cycles>(i % 97),
                            [&count] { ++count; });
        }
        engine.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EngineScheduleRun);

void
BM_CacheLookupInsert(benchmark::State& state)
{
    gga::SetAssocCache cache(32 * 1024, 8, 64);
    gga::Xoshiro256StarStar rng(3);
    for (auto _ : state) {
        const gga::Addr line = (rng.next() % 100000) * 64;
        if (cache.lookup(line) == gga::LineState::Invalid)
            cache.insert(line, gga::LineState::Valid);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupInsert);

void
BM_KMeans1d(benchmark::State& state)
{
    std::vector<double> values(state.range(0));
    gga::Xoshiro256StarStar rng(11);
    for (auto& v : values)
        v = static_cast<double>(rng.nextBounded(1000));
    for (auto _ : state) {
        auto r = gga::kmeans1d2(values);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans1d)->Arg(8)->Arg(64)->Arg(1024);

void
BM_GenerateGraph(benchmark::State& state)
{
    for (auto _ : state) {
        gga::GenSpec spec;
        spec.name = "gen";
        spec.numVertices = static_cast<gga::VertexId>(state.range(0));
        spec.numDirectedEdges =
            static_cast<gga::EdgeId>(state.range(0) * 8);
        spec.dist = gga::DegreeDist::LogNormal;
        spec.p1 = 2.0;
        spec.p2 = 0.6;
        spec.maxDegree = 128;
        spec.fracIntraBlock = 0.3;
        spec.seed = 13;
        auto g = gga::generateGraph(spec);
        benchmark::DoNotOptimize(g);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_GenerateGraph)->Arg(1 << 12)->Arg(1 << 14);

void
BM_TaxonomyProfile(benchmark::State& state)
{
    const gga::CsrGraph& g = benchGraph();
    for (auto _ : state) {
        auto p = gga::profileGraph(g);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_TaxonomyProfile);

void
BM_SimulatePr(benchmark::State& state)
{
    const gga::CsrGraph& g = benchGraph();
    gga::Session session;
    const gga::RunPlan plan =
        gga::RunPlan{}
            .app(gga::AppId::Pr)
            .graph(g, "bench")
            .config(state.range(0) == 0 ? "TG0" : "SGR")
            .collectOutputs(false);
    for (auto _ : state) {
        auto r = session.run(plan);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges() * 10);
}
BENCHMARK(BM_SimulatePr)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    gga::setVerbose(false);
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
