/**
 * @file
 * Micro-benchmarks of the substrate components: event engine throughput
 * (time wheel vs. the binary-heap reference), cache lookups, k-means,
 * graph generation, taxonomy metrics, and small end-to-end simulations.
 * These track the simulator's own performance (host wall-time), not
 * simulated cycles.
 *
 * Two modes:
 *   ./micro_substrate [google-benchmark flags]   interactive tables
 *   ./micro_substrate --json out.json            self-contained suite that
 *       writes the machine-readable BENCH_engine.json consumed by
 *       scripts/bench.sh, tracking events/sec, ns/event, the wheel:heap
 *       speedup, and end-to-end run times across PRs.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "graph/generator.hpp"
#include "model/config.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "taxonomy/kmeans.hpp"
#include "taxonomy/profile.hpp"

namespace {

/**
 * The binary min-heap engine this repository used before the time wheel
 * (PR 3), kept verbatim as the measurement baseline so the wheel's
 * speedup stays verifiable in-tree rather than being a one-off number.
 */
class BinaryHeapEngine
{
  public:
    gga::Cycles now() const { return now_; }

    void
    schedule(gga::Cycles delay, gga::EventFn fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    void
    scheduleAt(gga::Cycles when, gga::EventFn fn)
    {
        heap_.push_back(Event{when, seq_++, std::move(fn)});
        siftUp(heap_.size() - 1);
    }

    void
    run()
    {
        while (!heap_.empty()) {
            Event ev = std::move(heap_.front());
            if (heap_.size() > 1) {
                heap_.front() = std::move(heap_.back());
                heap_.pop_back();
                siftDown(0);
            } else {
                heap_.pop_back();
            }
            now_ = ev.time;
            ++processed_;
            ev.fn();
        }
    }

    std::uint64_t processedEvents() const { return processed_; }

  private:
    struct Event
    {
        gga::Cycles time;
        std::uint64_t seq;
        gga::EventFn fn;
    };

    static bool
    later(const Event& a, const Event& b)
    {
        return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }

    void
    siftUp(std::size_t i)
    {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!later(heap_[parent], heap_[i]))
                break;
            std::swap(heap_[parent], heap_[i]);
            i = parent;
        }
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        while (true) {
            const std::size_t l = 2 * i + 1;
            const std::size_t r = 2 * i + 2;
            std::size_t best = i;
            if (l < n && later(heap_[best], heap_[l]))
                best = l;
            if (r < n && later(heap_[best], heap_[r]))
                best = r;
            if (best == i)
                break;
            std::swap(heap_[best], heap_[i]);
            i = best;
        }
    }

    std::vector<Event> heap_;
    gga::Cycles now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;
};

/**
 * Delay distribution matching the simulator's profile: mostly 0/1-cycle
 * continuations, a band of cache/NoC latencies, occasional DRAM fills
 * and rare far timeouts. Pre-generated so every engine replays the same
 * schedule.
 */
std::vector<gga::Cycles>
benchDelays(std::size_t count)
{
    std::vector<gga::Cycles> delays(count);
    gga::Xoshiro256StarStar rng(17);
    for (auto& d : delays) {
        const std::uint64_t r = rng.nextBounded(1000);
        if (r < 300)
            d = 0;
        else if (r < 620)
            d = 1;
        else if (r < 800)
            d = 2 + rng.nextBounded(30);
        else if (r < 950)
            d = 30 + rng.nextBounded(270); // L2/NoC round trips
        else if (r < 999)
            d = 170 + rng.nextBounded(2000); // DRAM + queueing
        else
            d = (1u << 20) + rng.nextBounded(5000); // far timeout
    }
    return delays;
}

/**
 * Steady-state throughput: keep @p width self-rescheduling chains alive
 * until @p total events have executed. Models the simulator's hot loop
 * (pop one event, schedule a successor).
 */
template <typename EngineT>
double
chainedNsPerEvent(std::size_t width, std::uint64_t total)
{
    const std::vector<gga::Cycles> delays = benchDelays(4096);
    EngineT engine;
    std::uint64_t executed = 0;
    struct Chain
    {
        EngineT* engine;
        std::uint64_t* executed;
        std::uint64_t total;
        const std::vector<gga::Cycles>* delays;

        void
        operator()() const
        {
            if (++*executed >= total)
                return;
            engine->schedule((*delays)[*executed & 4095], *this);
        }
    };
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < width; ++c)
        engine.schedule(delays[c & 4095],
                        Chain{&engine, &executed, total, &delays});
    engine.run();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    return ns / static_cast<double>(executed);
}

/** Bulk schedule+run: @p total events in batches of @p batch. */
template <typename EngineT>
double
bulkNsPerEvent(std::size_t batch, std::uint64_t total)
{
    const std::vector<gga::Cycles> delays = benchDelays(4096);
    std::uint64_t count = 0;
    const auto start = std::chrono::steady_clock::now();
    EngineT engine;
    for (std::uint64_t done = 0; done < total; done += batch) {
        for (std::size_t i = 0; i < batch; ++i)
            engine.schedule(delays[(done + i) & 4095], [&count] { ++count; });
        engine.run();
    }
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(count);
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    return ns / static_cast<double>(count);
}

const gga::CsrGraph&
benchGraph()
{
    static const gga::CsrGraph g = [] {
        gga::GenSpec spec;
        spec.name = "bench";
        spec.numVertices = 4096;
        spec.numDirectedEdges = 32768;
        spec.dist = gga::DegreeDist::PowerLaw;
        spec.p1 = 2.3;
        spec.p2 = 2.0;
        spec.maxDegree = 256;
        spec.fracIntraBlock = 0.4;
        spec.seed = 7;
        return gga::generateGraph(spec);
    }();
    return g;
}

// --------------------------------------------------------------------------
// --json mode: the tracked BENCH_engine.json suite.
// --------------------------------------------------------------------------

struct EndToEnd
{
    const char* app;
    const char* config;
    double wallMs;
    std::uint64_t simEvents;
    double hostEventsPerSec;
};

EndToEnd
runEndToEnd(gga::Session& session, const char* app_name, gga::AppId app,
            const char* config)
{
    const gga::RunPlan plan = gga::RunPlan{}
                                  .app(app)
                                  .graph(benchGraph(), "bench")
                                  .config(config)
                                  .collectOutputs(false);
    // Warm the graph caches once, then time three runs and keep the best.
    session.run(plan);
    double best_ms = 1e100;
    std::uint64_t events = 0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        const gga::RunOutcome out = session.run(plan);
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        events = out.result.events;
        best_ms = std::min(best_ms, ms);
    }
    return EndToEnd{app_name, config, best_ms, events,
                    static_cast<double>(events) / (best_ms * 1e-3)};
}

int
runJsonSuite(const char* path)
{
    constexpr std::uint64_t kBulkTotal = 4u << 20;
    constexpr std::uint64_t kChainTotal = 4u << 20;
    constexpr std::size_t kBatch = 4096;
    constexpr std::size_t kWidth = 1024;

    std::fprintf(stderr, "[bench] engine bulk schedule+run...\n");
    const double wheel_bulk = bulkNsPerEvent<gga::Engine>(kBatch, kBulkTotal);
    const double heap_bulk =
        bulkNsPerEvent<BinaryHeapEngine>(kBatch, kBulkTotal);
    std::fprintf(stderr, "[bench] engine chained steady state...\n");
    const double wheel_chain =
        chainedNsPerEvent<gga::Engine>(kWidth, kChainTotal);
    const double heap_chain =
        chainedNsPerEvent<BinaryHeapEngine>(kWidth, kChainTotal);

    // Three apps spanning the traversal taxonomy: PR (static pull), SSSP
    // (static push/pull with weights), CC (dynamic, PushPull-only) — so
    // the tracked host-events/sec trajectory covers more than one kernel
    // shape.
    std::fprintf(stderr, "[bench] end-to-end PR/CC/SSSP runs...\n");
    gga::Session session;
    const EndToEnd tg0 = runEndToEnd(session, "PR", gga::AppId::Pr, "TG0");
    const EndToEnd sgr = runEndToEnd(session, "PR", gga::AppId::Pr, "SGR");
    const EndToEnd cc = runEndToEnd(session, "CC", gga::AppId::Cc, "DG1");
    const EndToEnd sssp =
        runEndToEnd(session, "SSSP", gga::AppId::Sssp, "SGR");

    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    char stamp[64];
    const std::time_t t = std::time(nullptr);
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&t));
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"suite\": \"gga micro_substrate\",\n");
    std::fprintf(f, "  \"generated\": \"%s\",\n", stamp);
    std::fprintf(f, "  \"engine\": {\n");
    std::fprintf(f,
                 "    \"bulk_schedule_run\": {\"events\": %llu, "
                 "\"wheel_ns_per_event\": %.2f, \"heap_ns_per_event\": "
                 "%.2f, \"wheel_events_per_sec\": %.0f, "
                 "\"speedup_vs_heap\": %.2f},\n",
                 static_cast<unsigned long long>(kBulkTotal), wheel_bulk,
                 heap_bulk, 1e9 / wheel_bulk, heap_bulk / wheel_bulk);
    std::fprintf(f,
                 "    \"chained_steady_state\": {\"events\": %llu, "
                 "\"width\": %zu, \"wheel_ns_per_event\": %.2f, "
                 "\"heap_ns_per_event\": %.2f, \"wheel_events_per_sec\": "
                 "%.0f, \"speedup_vs_heap\": %.2f}\n",
                 static_cast<unsigned long long>(kChainTotal), kWidth,
                 wheel_chain, heap_chain, 1e9 / wheel_chain,
                 heap_chain / wheel_chain);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"end_to_end\": [\n");
    const EndToEnd* rows[] = {&tg0, &sgr, &cc, &sssp};
    constexpr std::size_t kRows = sizeof rows / sizeof rows[0];
    for (std::size_t i = 0; i < kRows; ++i) {
        std::fprintf(f,
                     "    {\"app\": \"%s\", \"config\": \"%s\", "
                     "\"wall_ms\": %.1f, \"sim_events\": %llu, "
                     "\"host_events_per_sec\": %.0f}%s\n",
                     rows[i]->app, rows[i]->config, rows[i]->wallMs,
                     static_cast<unsigned long long>(rows[i]->simEvents),
                     rows[i]->hostEventsPerSec,
                     i + 1 == kRows ? "" : ",");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr,
                 "[bench] wrote %s (bulk %.1fns/ev %.2fx, chained %.1fns/ev "
                 "%.2fx vs heap)\n",
                 path, wheel_bulk, heap_bulk / wheel_bulk, wheel_chain,
                 heap_chain / wheel_chain);
    return 0;
}

// --------------------------------------------------------------------------
// google-benchmark registrations (interactive mode).
// --------------------------------------------------------------------------

void
BM_EngineScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        gga::Engine engine;
        std::uint64_t count = 0;
        for (int i = 0; i < 4096; ++i) {
            engine.schedule(static_cast<gga::Cycles>(i % 97),
                            [&count] { ++count; });
        }
        engine.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EngineScheduleRun);

void
BM_HeapEngineScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        BinaryHeapEngine engine;
        std::uint64_t count = 0;
        for (int i = 0; i < 4096; ++i) {
            engine.schedule(static_cast<gga::Cycles>(i % 97),
                            [&count] { ++count; });
        }
        engine.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HeapEngineScheduleRun);

void
BM_EngineChained(benchmark::State& state)
{
    for (auto _ : state) {
        const double ns = chainedNsPerEvent<gga::Engine>(256, 1u << 18);
        benchmark::DoNotOptimize(ns);
    }
    state.SetItemsProcessed(state.iterations() * (1u << 18));
}
BENCHMARK(BM_EngineChained)->Unit(benchmark::kMillisecond);

void
BM_HeapEngineChained(benchmark::State& state)
{
    for (auto _ : state) {
        const double ns = chainedNsPerEvent<BinaryHeapEngine>(256, 1u << 18);
        benchmark::DoNotOptimize(ns);
    }
    state.SetItemsProcessed(state.iterations() * (1u << 18));
}
BENCHMARK(BM_HeapEngineChained)->Unit(benchmark::kMillisecond);

void
BM_CacheLookupInsert(benchmark::State& state)
{
    gga::SetAssocCache cache(32 * 1024, 8, 64);
    gga::Xoshiro256StarStar rng(3);
    for (auto _ : state) {
        const gga::Addr line = (rng.next() % 100000) * 64;
        if (cache.lookup(line) == gga::LineState::Invalid)
            cache.insert(line, gga::LineState::Valid);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupInsert);

void
BM_KMeans1d(benchmark::State& state)
{
    std::vector<double> values(state.range(0));
    gga::Xoshiro256StarStar rng(11);
    for (auto& v : values)
        v = static_cast<double>(rng.nextBounded(1000));
    for (auto _ : state) {
        auto r = gga::kmeans1d2(values);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans1d)->Arg(8)->Arg(64)->Arg(1024);

void
BM_GenerateGraph(benchmark::State& state)
{
    for (auto _ : state) {
        gga::GenSpec spec;
        spec.name = "gen";
        spec.numVertices = static_cast<gga::VertexId>(state.range(0));
        spec.numDirectedEdges =
            static_cast<gga::EdgeId>(state.range(0) * 8);
        spec.dist = gga::DegreeDist::LogNormal;
        spec.p1 = 2.0;
        spec.p2 = 0.6;
        spec.maxDegree = 128;
        spec.fracIntraBlock = 0.3;
        spec.seed = 13;
        auto g = gga::generateGraph(spec);
        benchmark::DoNotOptimize(g);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_GenerateGraph)->Arg(1 << 12)->Arg(1 << 14);

void
BM_TaxonomyProfile(benchmark::State& state)
{
    const gga::CsrGraph& g = benchGraph();
    for (auto _ : state) {
        auto p = gga::profileGraph(g);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_TaxonomyProfile);

void
BM_SimulatePr(benchmark::State& state)
{
    const gga::CsrGraph& g = benchGraph();
    gga::Session session;
    const gga::RunPlan plan =
        gga::RunPlan{}
            .app(gga::AppId::Pr)
            .graph(g, "bench")
            .config(state.range(0) == 0 ? "TG0" : "SGR")
            .collectOutputs(false);
    for (auto _ : state) {
        auto r = session.run(plan);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges() * 10);
}
BENCHMARK(BM_SimulatePr)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    gga::setVerbose(false);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json requires an output path\n");
                return 1;
            }
            return runJsonSuite(argv[i + 1]);
        }
    }
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
