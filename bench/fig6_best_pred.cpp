/**
 * @file
 * Reproduces the paper's Figure 6: for every workload where the
 * one-size-fits-all configuration (SGR; DGR for CC) is *not* the best,
 * compare SGR against the empirical BEST and the model-PREDicted
 * configurations, with execution-time breakdowns.
 *
 * The paper finds 12 such workloads ({MIS,PR,CLR}-OLS, {BC,MIS,PR}-RAJ,
 * CC-*) with 7%-87% (avg 44%) reduction over SGR.
 *
 * All 36 sweeps run through one shared Session executor — submitted up
 * front, gathered in paper order, bit-identical to a serial run.
 *
 * Usage: fig6_best_pred [--csv]
 * Environment: GGA_SCALE in (0,1] scales the inputs down for quick runs;
 * GGA_SESSION_THREADS > 1 widens the executor (GGA_SWEEP_THREADS is the
 * deprecated alias).
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "harness/figures.hpp"
#include "harness/sweep.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"
#include "support/stats.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(true);

    gga::SessionOptions session_opts;
    session_opts.scale = gga::evaluationScale(); // sweeps honor GGA_SCALE
    session_opts.verboseRuns = true;
    gga::Session session(session_opts);

    std::vector<gga::PendingSweep> pending;
    for (const gga::Workload& wl : gga::allWorkloads()) {
        pending.push_back(gga::submitSweep(
            session, wl, gga::figureConfigs(wl.dynamic())));
    }

    gga::TextTable table;
    table.setHeader({"Workload", "Config", "NormToSGR", "Busy", "Comp",
                     "Data", "Sync", "Idle", "Reduction"});

    std::vector<double> reductions;
    for (gga::PendingSweep& job : pending) {
        const gga::Workload wl = job.workload();
        const gga::SystemConfig sgr =
            gga::parseConfig(wl.dynamic() ? "DGR" : "SGR");
        const gga::SweepResult sweep = job.collect();
        const gga::ConfigResult* sgr_run = sweep.find(sgr);
        if (sweep.best == sgr)
            continue; // SGR is optimal here; not a Figure 6 case

        const double sgr_cycles = static_cast<double>(sgr_run->run.cycles);
        const double reduction = 1.0 - sweep.bestCycles / sgr_cycles;
        reductions.push_back(reduction);

        for (const gga::SystemConfig& cfg :
             {sgr, sweep.best, sweep.predicted}) {
            const gga::ConfigResult* r = sweep.find(cfg);
            std::vector<std::string> cells{wl.name(), cfg.name()};
            for (std::string& c : gga::breakdownCells(r->run, sgr_cycles))
                cells.push_back(std::move(c));
            if (cfg == sweep.best)
                cells.push_back(gga::fmtPct(reduction));
            table.addRow(std::move(cells));
        }
        table.addSeparator();
    }

    std::cout << "Figure 6: workloads where SGR (DGR for CC) is not "
                 "best\n(scale=" << session.options().scale
              << ", session threads=" << session.threads()
              << ")\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    std::cout << "\nCases: " << reductions.size()
              << " (paper: 12); reduction over SGR: min="
              << gga::fmtPct(reductions.empty()
                                 ? 0.0
                                 : *std::min_element(reductions.begin(),
                                                     reductions.end()))
              << " max="
              << gga::fmtPct(reductions.empty()
                                 ? 0.0
                                 : *std::max_element(reductions.begin(),
                                                     reductions.end()))
              << " avg="
              << gga::fmtPct(gga::mean(reductions))
              << " (paper: 7%-87%, avg 44%)\n";
    return 0;
}
