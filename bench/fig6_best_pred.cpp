/**
 * @file
 * Reproduces the paper's Figure 6: for every workload where the
 * one-size-fits-all configuration (SGR; DGR for CC) is *not* the best,
 * compare SGR against the empirical BEST and the model-PREDicted
 * configurations, with execution-time breakdowns.
 *
 * The paper finds 12 such workloads ({MIS,PR,CLR}-OLS, {BC,MIS,PR}-RAJ,
 * CC-*) with 7%-87% (avg 44%) reduction over SGR.
 *
 * The figure is one work-unit manifest (harness figureSet) executed on
 * the in-process Session executor via runManifest — the same units and
 * renderer the gga_worker/gga_merge sharded pipeline uses.
 *
 * Usage: fig6_best_pred [--csv]
 * Environment: GGA_SCALE in (0,1] scales the inputs down for quick runs;
 * GGA_SESSION_THREADS > 1 widens the executor (GGA_SWEEP_THREADS is the
 * deprecated alias).
 */

#include <cstring>
#include <iostream>

#include "eval/run.hpp"
#include "harness/figures.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(true);

    gga::SessionOptions session_opts;
    session_opts.scale = gga::evaluationScale(); // sweeps honor GGA_SCALE
    session_opts.verboseRuns = true;
    gga::Session session(session_opts);

    const gga::FigureSet set =
        gga::figureSet("fig6", session.options().scale);
    const gga::ResultSet results = gga::runManifest(session, set.manifest);

    std::cout << "Figure 6: workloads where SGR (DGR for CC) is not "
                 "best\n(scale=" << session.options().scale
              << ", session threads=" << session.threads()
              << ")\n\n";
    std::cout << gga::renderFigure(set, results, csv);
    return 0;
}
