/**
 * @file
 * Ablation: L1 capacity vs. the Volume classification thresholds.
 *
 * The taxonomy classifies Volume against 1.5x the L1 size and the per-SM
 * L2 share (Sec. V-A). Sweeping the L1 from 8 KB to 128 KB on a pull
 * workload whose gathers have reuse (MIS-OLS) shows the capacity cliff
 * the thresholds approximate.
 *
 * The hardware points are enumerated as a work-unit manifest
 * (Manifest::sweepParams) and executed on the session executor — every
 * point in flight at once instead of a serial run() loop.
 *
 * Usage: ablation_l1_size [--csv]
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "eval/run.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(true);

    gga::SessionOptions opts;
    opts.scale = gga::evaluationScale();
    gga::Session session(opts);

    const std::vector<std::uint32_t> l1_sizes = {8, 16, 32, 64, 128};

    // One param-sweep group per (graph, config); the group's key list
    // drives both result lookup and row order.
    gga::Manifest manifest;
    struct Group
    {
        gga::GraphPreset graph;
        const char* config;
        std::vector<std::string> keys;
    };
    std::vector<Group> groups;
    for (gga::GraphPreset g : {gga::GraphPreset::Ols, gga::GraphPreset::Raj}) {
        for (const char* cfg_name : {"TG0", "SDR"}) {
            std::vector<gga::SimParams> points;
            for (std::uint32_t l1 : l1_sizes) {
                gga::SimParams params;
                params.l1SizeKiB = l1;
                points.push_back(params);
            }
            groups.push_back(
                {g, cfg_name,
                 manifest.sweepParams(gga::AppId::Mis, g,
                                      gga::parseConfig(cfg_name), points,
                                      opts.scale)});
        }
    }

    const gga::ResultSet results = gga::runManifest(session, manifest);

    gga::TextTable table;
    table.setHeader({"Workload", "Config", "L1KiB", "Cycles", "Norm",
                     "L1MissRate"});
    for (const Group& group : groups) {
        double base = 0.0;
        for (std::size_t i = 0; i < group.keys.size(); ++i) {
            const gga::RunResult& r = results.at(group.keys[i]).run;
            if (base == 0.0)
                base = static_cast<double>(r.cycles);
            const double touches = static_cast<double>(
                r.mem.l1LoadHits + r.mem.l1LoadMisses);
            table.addRow({"MIS-" + gga::presetName(group.graph),
                          group.config, std::to_string(l1_sizes[i]),
                          std::to_string(r.cycles),
                          gga::fmtDouble(r.cycles / base, 3),
                          gga::fmtPct(touches > 0
                                          ? r.mem.l1LoadMisses / touches
                                          : 0.0)});
        }
        table.addSeparator();
    }

    std::cout << "Ablation: L1 capacity sensitivity\n"
                 "(normalized to the 8 KB point)\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    return 0;
}
