/**
 * @file
 * Ablation: L1 capacity vs. the Volume classification thresholds.
 *
 * The taxonomy classifies Volume against 1.5x the L1 size and the per-SM
 * L2 share (Sec. V-A). Sweeping the L1 from 8 KB to 128 KB on a pull
 * workload whose gathers have reuse (MIS-OLS) shows the capacity cliff
 * the thresholds approximate.
 *
 * Usage: ablation_l1_size [--csv]
 */

#include <cstring>
#include <iostream>

#include "api/session.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int
main(int argc, char** argv)
{
    const bool csv = argc > 1 && !std::strcmp(argv[1], "--csv");
    gga::setVerbose(true);

    gga::SessionOptions opts;
    opts.scale = gga::evaluationScale();
    opts.collectOutputs = false; // timing/memory counters only
    gga::Session session(opts);

    gga::TextTable table;
    table.setHeader({"Workload", "Config", "L1KiB", "Cycles", "Norm",
                     "L1MissRate"});

    for (gga::GraphPreset g : {gga::GraphPreset::Ols, gga::GraphPreset::Raj}) {
        for (const char* cfg_name : {"TG0", "SDR"}) {
            double base = 0.0;
            for (std::uint32_t l1 : {8u, 16u, 32u, 64u, 128u}) {
                gga::SimParams params;
                params.l1SizeKiB = l1;
                const gga::RunResult r = session.run(gga::RunPlan{}
                                                         .app(gga::AppId::Mis)
                                                         .graph(g)
                                                         .config(cfg_name)
                                                         .params(params))
                                             .result;
                if (base == 0.0)
                    base = static_cast<double>(r.cycles);
                const double touches = static_cast<double>(
                    r.mem.l1LoadHits + r.mem.l1LoadMisses);
                table.addRow({"MIS-" + gga::presetName(g), cfg_name,
                              std::to_string(l1), std::to_string(r.cycles),
                              gga::fmtDouble(r.cycles / base, 3),
                              gga::fmtPct(touches > 0
                                              ? r.mem.l1LoadMisses / touches
                                              : 0.0)});
            }
            table.addSeparator();
        }
    }

    std::cout << "Ablation: L1 capacity sensitivity\n"
                 "(normalized to the 8 KB point)\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    return 0;
}
