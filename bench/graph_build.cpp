/**
 * @file
 * Graph-construction benchmark: the cold-start cost a sharded worker
 * pays per input, per preset x scale —
 *
 *   synth_ref_ms      full synthesis, frozen v1 baseline
 *                     (generateGraphReference: one sequential stream)
 *   synth_parallel_ms full synthesis, current generator (SplitRng
 *                     phases + alias sampling + sharded dedup)
 *   build_serial_ms   CSR construction alone, reference std::sort path
 *   build_parallel_ms CSR construction alone, counting-sort path
 *   snapshot_load_ms  checksummed .csrbin load, copying (ifstream) path
 *   mmap_load_ms      checksummed .csrbin load, zero-copy mmap path
 *
 * Emits the machine-readable BENCH_graph.json tracked across PRs (via
 * scripts/bench.sh graph); CI gates the largest preset at scale 1.0 on
 * build_speedup >= 2, synth_speedup >= 2.5, mmap_load_ms <=
 * snapshot_load_ms, and load_vs_rebuild (mmap load vs parallel
 * synthesis — the two fast paths a worker chooses between) >= 2. Every
 * timed variant except the v1 baseline (whose output intentionally
 * differs) is asserted byte-identical before the numbers are written —
 * a fast wrong build would be worse than a slow right one.
 *
 * Usage: graph_build --json OUT [--scale S] [--threads T] [--reps R]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generator.hpp"
#include "graph/presets.hpp"
#include "graph/snapshot.hpp"
#include "support/log.hpp"

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Row
{
    std::string preset;
    unsigned threads = 1;
    double scale;
    std::uint64_t vertices;
    std::uint64_t edges;
    double synthRefMs;
    double synthParallelMs;
    double buildSerialMs;
    double buildParallelMs;
    double snapshotSaveMs;
    double snapshotLoadMs;
    double mmapLoadMs;

    double buildSpeedup() const { return buildSerialMs / buildParallelMs; }
    double synthSpeedup() const { return synthRefMs / synthParallelMs; }
    double loadVsRebuild() const { return synthParallelMs / mmapLoadMs; }
};

Row
benchPreset(gga::GraphPreset p, double scale, unsigned threads, int reps,
            const std::string& tmp_dir)
{
    Row row;
    row.preset = gga::presetName(p);
    row.threads = threads;
    row.scale = scale;
    const gga::GenSpec spec = gga::presetSpecScaled(p, scale);

    // Full synthesis, as a cold-start worker without a snapshot pays it:
    // the current parallel generator (best of reps, the number workers
    // live with) and the frozen v1 baseline (once — it only anchors the
    // speedup column). Their outputs differ by design, so the baseline
    // is sanity-checked on invariants rather than byte equality.
    gga::CsrGraph g;
    row.synthParallelMs = 1e100;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        g = gga::generateGraph(spec, threads);
        row.synthParallelMs = std::min(row.synthParallelMs, msSince(start));
    }
    row.vertices = g.numVertices();
    row.edges = g.numEdges();
    {
        const auto start = std::chrono::steady_clock::now();
        const gga::CsrGraph ref = gga::generateGraphReference(spec, threads);
        row.synthRefMs = msSince(start);
        if (ref.numEdges() != g.numEdges() || !ref.isSymmetric())
            GGA_FATAL("reference synthesis broke its invariants on ",
                      row.preset);
    }

    // CSR construction alone: replay the canonical undirected pairs into
    // a builder and time both paths over the same input, best-of-reps.
    gga::GraphBuilder builder(g.numVertices());
    for (gga::VertexId u = 0; u < g.numVertices(); ++u) {
        for (gga::VertexId v : g.neighbors(u)) {
            if (u <= v)
                builder.addEdge(u, v);
        }
    }
    row.buildSerialMs = 1e100;
    row.buildParallelMs = 1e100;
    gga::CsrGraph serial, parallel;
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        serial = builder.buildReferenceSort(/*with_weights=*/true);
        row.buildSerialMs = std::min(row.buildSerialMs, msSince(start));

        builder.threads(threads);
        start = std::chrono::steady_clock::now();
        parallel = builder.build(/*with_weights=*/true);
        row.buildParallelMs = std::min(row.buildParallelMs, msSince(start));
    }
    if (!(serial == parallel) || !(parallel == g))
        GGA_FATAL("builder paths diverge on ", row.preset,
                  " — refusing to report timings for a wrong build");

    // Snapshot round trip, as a prebuilt-cache worker pays it.
    const std::string snap =
        tmp_dir + "/" + row.preset + "_bench.csrbin";
    auto start = std::chrono::steady_clock::now();
    gga::saveCsrSnapshot(snap, g);
    row.snapshotSaveMs = msSince(start);
    row.snapshotLoadMs = 1e100;
    row.mmapLoadMs = 1e100;
    for (int r = 0; r < reps; ++r) {
        start = std::chrono::steady_clock::now();
        const gga::CsrGraph loaded =
            gga::loadCsrSnapshot(snap, gga::SnapshotLoadMode::Copy);
        row.snapshotLoadMs = std::min(row.snapshotLoadMs, msSince(start));
        if (!(loaded == g))
            GGA_FATAL("snapshot round trip diverges on ", row.preset);

        // The zero-copy path checksums the same bytes but skips the
        // heap allocation + copy; equality walks the mapped arrays, so
        // time only the load itself.
        start = std::chrono::steady_clock::now();
        const gga::CsrGraph mapped =
            gga::loadCsrSnapshot(snap, gga::SnapshotLoadMode::Mmap);
        row.mmapLoadMs = std::min(row.mmapLoadMs, msSince(start));
        if (!(mapped == g))
            GGA_FATAL("mmap snapshot load diverges on ", row.preset);
    }
    std::filesystem::remove(snap);

    std::fprintf(stderr,
                 "[bench] %s @ %.2f x%u: synth %.1f -> %.1fms (%.2fx), "
                 "build %.1f -> %.1fms (%.2fx), load %.1f -> %.1fms "
                 "mmap (%.1fx vs resynthesis)\n",
                 row.preset.c_str(), scale, threads, row.synthRefMs,
                 row.synthParallelMs, row.synthSpeedup(), row.buildSerialMs,
                 row.buildParallelMs, row.buildSpeedup(),
                 row.snapshotLoadMs, row.mmapLoadMs, row.loadVsRebuild());
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out;
    double scale = 1.0;
    unsigned threads = 0;
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            scale = std::strtod(argv[++i], nullptr);
            if (scale <= 0.0 || scale > 1.0)
                GGA_FATAL("--scale wants a value in (0, 1]");
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            // Strict parse: a typo'd thread count must not silently
            // record single-threaded numbers in the tracked JSON.
            const char* text = argv[++i];
            char* end = nullptr;
            threads = static_cast<unsigned>(std::strtoul(text, &end, 10));
            if (end == text || *end != '\0' || text[0] == '-')
                GGA_FATAL("--threads wants a non-negative integer, got '",
                          text, "'");
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
            if (reps < 1)
                GGA_FATAL("--reps wants a positive integer");
        } else {
            GGA_FATAL("unknown argument '", argv[i],
                      "'; usage: graph_build --json OUT [--scale S] "
                      "[--threads T] [--reps R]");
        }
    }
    if (out.empty())
        GGA_FATAL("missing --json OUT");
    gga::setVerbose(false);
    if (threads == 0)
        threads = gga::defaultBuildThreads();

    const std::string tmp_dir =
        std::filesystem::temp_directory_path().string();
    // Each preset at one thread AND at the configured budget: the pair
    // of rows is the parallel-path scaling trajectory the JSON tracks
    // across PRs (identical work, so the outputs cross-check for free).
    std::vector<Row> rows;
    for (gga::GraphPreset p : gga::kAllGraphPresets) {
        rows.push_back(benchPreset(p, scale, 1, reps, tmp_dir));
        if (threads != 1)
            rows.push_back(benchPreset(p, scale, threads, reps, tmp_dir));
    }

    // The gate row: the largest input at this scale (edge count decides)
    // benched at the configured thread budget.
    const Row* largest = &rows.front();
    for (const Row& r : rows) {
        if (r.threads == threads &&
            (largest->threads != threads || r.edges > largest->edges))
            largest = &r;
    }

    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr)
        GGA_FATAL("cannot write ", out);
    char stamp[64];
    const std::time_t t = std::time(nullptr);
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&t));
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"suite\": \"gga graph_build\",\n");
    std::fprintf(f, "  \"generated\": \"%s\",\n", stamp);
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"scale\": %g,\n", scale);
    std::fprintf(f, "  \"largest_preset\": \"%s\",\n",
                 largest->preset.c_str());
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "    {\"preset\": \"%s\", \"threads\": %u, \"scale\": %g, "
            "\"vertices\": %llu, "
            "\"edges\": %llu, \"synth_ref_ms\": %.2f, "
            "\"synth_parallel_ms\": %.2f, \"synth_speedup\": %.2f, "
            "\"build_serial_ms\": %.2f, \"build_parallel_ms\": %.2f, "
            "\"build_speedup\": %.2f, \"snapshot_save_ms\": %.2f, "
            "\"snapshot_load_ms\": %.2f, \"mmap_load_ms\": %.2f, "
            "\"load_vs_rebuild\": %.1f}%s\n",
            r.preset.c_str(), r.threads, r.scale,
            static_cast<unsigned long long>(r.vertices),
            static_cast<unsigned long long>(r.edges), r.synthRefMs,
            r.synthParallelMs, r.synthSpeedup(), r.buildSerialMs,
            r.buildParallelMs, r.buildSpeedup(), r.snapshotSaveMs,
            r.snapshotLoadMs, r.mmapLoadMs, r.loadVsRebuild(),
            i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr,
                 "[bench] wrote %s (%s synth %.2fx, build %.2fx, "
                 "load %.1fx)\n",
                 out.c_str(), largest->preset.c_str(),
                 largest->synthSpeedup(), largest->buildSpeedup(),
                 largest->loadVsRebuild());
    return 0;
}
