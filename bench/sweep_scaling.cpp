/**
 * @file
 * Wall-clock scaling of the parallel sweepWorkload: sweep one workload's
 * full configuration space at increasing thread counts, verify every run
 * is bit-identical to the serial sweep, and report the speedup. The
 * per-config simulations are independent, so on a multi-core host the
 * fan-out is embarrassingly parallel up to the config count.
 *
 * Usage: sweep_scaling [APP] [GRAPH] [scale] [max_threads]
 *   APP   in {PR, SSSP, MIS, CLR, BC, CC}      (default MIS)
 *   GRAPH in {AMZ, DCT, EML, OLS, RAJ, WNG}    (default RAJ)
 *   scale in (0, 1]: graph size multiplier      (default 0.25;
 *          exported as GGA_SCALE so the sweep machinery sees it)
 *   max_threads: highest pool size to measure   (default 8)
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "api/session.hpp"
#include "harness/sweep.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

gga::GraphPreset
parsePreset(const std::string& name)
{
    for (gga::GraphPreset p : gga::kAllGraphPresets) {
        if (gga::presetName(p) == name)
            return p;
    }
    GGA_FATAL("unknown graph '", name, "'");
}

double
sweepSeconds(const gga::Workload& wl,
             const std::vector<gga::SystemConfig>& configs,
             unsigned threads, gga::SweepResult& out)
{
    const auto start = std::chrono::steady_clock::now();
    out = gga::sweepWorkload(wl, configs, gga::SimParams{},
                             gga::SweepOptions{threads});
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

bool
identical(const gga::SweepResult& a, const gga::SweepResult& b)
{
    if (a.results.size() != b.results.size() || a.best != b.best ||
        a.predicted != b.predicted || a.bestCycles != b.bestCycles ||
        a.predictedCycles != b.predictedCycles ||
        a.baselineCycles != b.baselineCycles)
        return false;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        if (a.results[i].config != b.results[i].config ||
            a.results[i].run.cycles != b.results[i].run.cycles ||
            a.results[i].run.events != b.results[i].run.events)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    gga::setVerbose(false);
    gga::Session session;
    const std::string app_name = argc > 1 ? argv[1] : "MIS";
    const gga::AppRegistry::Entry* entry =
        session.registry().findByName(app_name);
    if (!entry)
        GGA_FATAL("unknown app '", app_name, "'");
    const gga::GraphPreset preset = parsePreset(argc > 2 ? argv[2] : "RAJ");
    // The sweep machinery resolves its graph at the GGA_SCALE evaluation
    // scale; export the requested scale before anything memoizes it.
    setenv("GGA_SCALE", argc > 3 ? argv[3] : "0.25", /*overwrite=*/1);
    const unsigned max_threads = static_cast<unsigned>(
        std::clamp<long>(argc > 4 ? std::atol(argv[4]) : 8, 1, 256));

    const bool dynamic = entry->properties.traversal ==
                         gga::TraversalKind::Dynamic;
    const auto configs = gga::allConfigs(dynamic);
    const gga::Workload wl{entry->id, preset};

    // Pre-build the graph so timings measure simulation only.
    const auto graph = session.graphs().get(preset, gga::evaluationScale());
    std::cout << "sweep scaling: " << wl.name() << " x " << configs.size()
              << " configs (|V|=" << graph->numVertices()
              << ", |E|=" << graph->numEdges() << ", host cores="
              << std::thread::hardware_concurrency() << ")\n\n";

    gga::SweepResult serial;
    const double serial_s = sweepSeconds(wl, configs, 1, serial);

    gga::TextTable table;
    table.setHeader({"Threads", "Seconds", "Speedup", "Identical"});
    table.addRow({"1", gga::fmtDouble(serial_s, 2), "1.00x", "-"});
    for (unsigned t = 2; t <= max_threads; t *= 2) {
        gga::SweepResult parallel;
        const double s = sweepSeconds(wl, configs, t, parallel);
        table.addRow({std::to_string(t), gga::fmtDouble(s, 2),
                      gga::fmtDouble(serial_s / s, 2) + "x",
                      identical(serial, parallel) ? "yes" : "NO"});
        if (!identical(serial, parallel)) {
            std::cout << table.toText();
            GGA_FATAL("parallel sweep diverged from serial at ", t,
                      " threads");
        }
    }
    std::cout << table.toText();
    std::cout << "\nBEST=" << serial.best.name()
              << " PRED=" << serial.predicted.name()
              << " bestCycles=" << serial.bestCycles << "\n";
    return 0;
}
