/**
 * @file
 * Reproduces the paper's Figure 5: normalized GPU execution-time breakdown
 * (Busy/Comp/Data/Sync/Idle) for all 36 workloads.
 *
 * Static-traversal apps show the paper's five configurations (TG0, SG1,
 * SGR, SD1, SDR) normalized to TG0; CC shows DG1, DGR, DD1, DDR normalized
 * to DG1. Each app additionally reports the geometric-mean normalized
 * time of the empirical BEST and the model-PREDicted configurations
 * across its six inputs.
 *
 * The whole figure is one work-unit manifest (harness figureSet) executed
 * on the in-process Session executor via runManifest — the same units and
 * renderer the gga_worker/gga_merge sharded pipeline uses, so this binary
 * and a merged multi-worker run produce byte-identical tables.
 *
 * Usage: fig5_breakdown [--csv] [--full]
 *   --full sweeps all 12 (6 for CC) configurations instead of the figure
 *   subset when searching for BEST.
 * Environment: GGA_SCALE in (0,1] scales the inputs down for quick runs;
 * GGA_SESSION_THREADS > 1 widens the executor (GGA_SWEEP_THREADS is the
 * deprecated alias).
 */

#include <cstring>
#include <iostream>

#include "eval/run.hpp"
#include "harness/figures.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"

int
main(int argc, char** argv)
{
    bool csv = false;
    bool full = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--csv"))
            csv = true;
        else if (!std::strcmp(argv[i], "--full"))
            full = true;
    }
    gga::setVerbose(true);

    gga::SessionOptions session_opts;
    session_opts.scale = gga::evaluationScale(); // sweeps honor GGA_SCALE
    session_opts.verboseRuns = true;
    gga::Session session(session_opts);

    const gga::FigureSet set =
        gga::figureSet("fig5", session.options().scale, full);
    const gga::ResultSet results = gga::runManifest(session, set.manifest);

    std::cout << "Figure 5: normalized execution-time breakdown per "
                 "workload\n(baseline: TG0 for static apps, DG1 for CC; "
                 "scale=" << session.options().scale
              << ", session threads=" << session.threads()
              << ")\n\n";
    std::cout << gga::renderFigure(set, results, csv);
    return 0;
}
