/**
 * @file
 * Reproduces the paper's Figure 5: normalized GPU execution-time breakdown
 * (Busy/Comp/Data/Sync/Idle) for all 36 workloads.
 *
 * Static-traversal apps show the paper's five configurations (TG0, SG1,
 * SGR, SD1, SDR) normalized to TG0; CC shows DG1, DGR, DD1, DDR normalized
 * to DG1. Each app additionally reports the geometric-mean normalized
 * time of the empirical BEST and the model-PREDicted configurations
 * across its six inputs.
 *
 * All 36 sweeps are submitted to one shared Session executor up front, so
 * the fan-out covers workloads *and* configurations; results are gathered
 * in paper order and are bit-identical to a serial run.
 *
 * Usage: fig5_breakdown [--csv] [--full]
 *   --full sweeps all 12 (6 for CC) configurations instead of the figure
 *   subset when searching for BEST.
 * Environment: GGA_SCALE in (0,1] scales the inputs down for quick runs;
 * GGA_SESSION_THREADS > 1 widens the executor (GGA_SWEEP_THREADS is the
 * deprecated alias).
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "harness/figures.hpp"
#include "harness/sweep.hpp"
#include "harness/workloads.hpp"
#include "support/log.hpp"
#include "support/stats.hpp"

int
main(int argc, char** argv)
{
    bool csv = false;
    bool full = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--csv"))
            csv = true;
        else if (!std::strcmp(argv[i], "--full"))
            full = true;
    }
    gga::setVerbose(true);

    gga::SessionOptions session_opts;
    session_opts.scale = gga::evaluationScale(); // sweeps honor GGA_SCALE
    session_opts.verboseRuns = true;
    gga::Session session(session_opts);

    // Phase 1: enqueue every workload's sweep on the shared executor.
    std::vector<gga::PendingSweep> pending;
    for (gga::AppId app : gga::kAllApps) {
        for (gga::GraphPreset g : gga::kAllGraphPresets) {
            const gga::Workload wl{app, g};
            const auto configs = full ? gga::allConfigs(wl.dynamic())
                                      : gga::figureConfigs(wl.dynamic());
            pending.push_back(gga::submitSweep(session, wl, configs));
        }
    }

    gga::TextTable table;
    table.setHeader({"Workload", "Config", "Norm", "Busy", "Comp", "Data",
                     "Sync", "Idle", "Cycles", "Tag"});

    gga::TextTable summary;
    summary.setHeader({"App", "GeomeanBEST", "GeomeanPRED", "PredHitRate"});

    // Phase 2: gather in submission (= paper) order.
    std::size_t next = 0;
    for (gga::AppId app : gga::kAllApps) {
        std::vector<double> best_norm;
        std::vector<double> pred_norm;
        std::uint32_t exact = 0;
        for (gga::GraphPreset g : gga::kAllGraphPresets) {
            (void)g;
            const gga::SweepResult sweep = pending[next++].collect();
            gga::addSweepRows(table, sweep);
            table.addSeparator();
            const double base = static_cast<double>(sweep.baselineCycles);
            best_norm.push_back(sweep.bestCycles / base);
            pred_norm.push_back(sweep.predictedCycles / base);
            if (sweep.predicted == sweep.best)
                ++exact;
        }
        summary.addRow({gga::appName(app),
                        gga::fmtDouble(gga::geomean(best_norm), 3),
                        gga::fmtDouble(gga::geomean(pred_norm), 3),
                        std::to_string(exact) + "/6"});
    }

    std::cout << "Figure 5: normalized execution-time breakdown per "
                 "workload\n(baseline: TG0 for static apps, DG1 for CC; "
                 "scale=" << session.options().scale
              << ", session threads=" << session.threads()
              << ")\n\n";
    std::cout << (csv ? table.toCsv() : table.toText());
    std::cout << "\nPer-app geomean of BEST and PRED normalized times:\n";
    std::cout << (csv ? summary.toCsv() : summary.toText());
    return 0;
}
